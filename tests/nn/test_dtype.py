"""Precision axis: engine dtype state, per-kernel float32 equivalence,
``states_allclose``, and dtype plumbing through config/spec/checkpoints.

float64 remains the bitwise golden path (every pre-existing test pins it);
float32 is the opt-in fast path validated here by tolerance against the
float64 result for each kernel, in both engines.
"""

import json

import numpy as np
import pytest

from repro.fl.config import FLConfig
from repro.nn import functional as F
from repro.nn.engine import (
    COMPUTE_DTYPES,
    current_dtype,
    current_dtype_name,
    dtype_mode,
    engine_mode,
    engine_scope,
    validate_dtype,
)
from repro.nn.flat import FlatParams
from repro.nn.layers import Linear, Module
from repro.nn.models import SimpleMLP
from repro.nn.serialization import (
    StateLayout,
    StreamingAverager,
    average_states,
    states_allclose,
    states_equal,
)
from repro.nn.tensor import Tensor
from repro.runtime import RunSpec
from repro.store import spec_hash


class TestEngineDtypeState:
    def test_default_is_float64(self):
        assert current_dtype_name() == "float64"
        assert current_dtype() == np.float64

    def test_dtype_mode_switches_and_restores(self):
        with dtype_mode("float32"):
            assert current_dtype_name() == "float32"
            assert current_dtype() == np.float32
        assert current_dtype_name() == "float64"

    def test_dtype_mode_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with dtype_mode("float32"):
                raise RuntimeError("boom")
        assert current_dtype_name() == "float64"

    def test_dtype_modes_nest(self):
        with dtype_mode("float32"):
            with dtype_mode("float64"):
                assert current_dtype_name() == "float64"
            assert current_dtype_name() == "float32"

    def test_validate_dtype_rejects_unknown(self):
        for bad in ("float16", "f32", "double", ""):
            with pytest.raises(ValueError, match="dtype"):
                validate_dtype(bad)

    def test_compute_dtypes_enumerates_both(self):
        assert COMPUTE_DTYPES == ("float64", "float32")

    def test_engine_scope_sets_engine_and_dtype(self):
        config = FLConfig(num_clients=2, clients_per_round=1,
                          train_engine="reference", dtype="float32")
        with engine_scope(config):
            from repro.nn.engine import current_engine
            assert current_engine() == "reference"
            assert current_dtype_name() == "float32"
        assert current_dtype_name() == "float64"

    def test_tensor_defaults_to_engine_dtype(self):
        assert Tensor([1.0, 2.0]).data.dtype == np.float64
        with dtype_mode("float32"):
            assert Tensor([1.0, 2.0]).data.dtype == np.float32
            # Even float64 input arrays (e.g. dataset batches) are normalized
            # to the engine dtype, so a float32 model never sees mixed inputs.
            assert Tensor(np.zeros(3, dtype=np.float64)).data.dtype == np.float32

    def test_model_built_under_float32_is_float32(self):
        with dtype_mode("float32"):
            model = SimpleMLP(12, 3, hidden=8, seed=0)
            for param in model.parameters():
                assert param.data.dtype == np.float32
            for _name, buffer in model.named_buffers():
                assert buffer.dtype == np.float32

    def test_flat_arena_requires_matching_dtype(self):
        model = SimpleMLP(12, 3, hidden=8, seed=0)  # float64 parameters
        with dtype_mode("float32"):
            with pytest.raises(TypeError, match="compute dtype"):
                FlatParams.from_module(model)
        arena = FlatParams.from_module(SimpleMLP(12, 3, hidden=8, seed=0))
        assert arena.dtype == np.float64
        with dtype_mode("float32"):
            arena32 = FlatParams.from_module(SimpleMLP(12, 3, hidden=8, seed=0))
            assert arena32.dtype == np.float32
            assert arena32.vector.dtype == np.float32


def _kernel_cases():
    """(name, builder) pairs; builder(rng, dtype) -> (loss Tensor, inputs)."""

    def linear(rng, dt):
        x = Tensor(rng.normal(size=(4, 6)).astype(dt), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 6)).astype(dt), requires_grad=True)
        b = Tensor(rng.normal(size=3).astype(dt), requires_grad=True)
        return F.linear(x, w, b).sum(), [x, w, b]

    def conv(rng, dt):
        x = Tensor(rng.normal(size=(2, 3, 6, 6)).astype(dt), requires_grad=True)
        w = Tensor(rng.normal(size=(4, 3, 3, 3)).astype(dt), requires_grad=True)
        return F.conv2d(x, w, stride=1, padding=1).sum(), [x, w]

    def depthwise(rng, dt):
        x = Tensor(rng.normal(size=(2, 3, 6, 6)).astype(dt), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 1, 3, 3)).astype(dt), requires_grad=True)
        return F.depthwise_conv2d(x, w, padding=1).sum(), [x, w]

    def bn_train(rng, dt):
        x = Tensor(rng.normal(size=(4, 3, 5, 5)).astype(dt), requires_grad=True)
        w = Tensor(np.ones(3, dtype=dt), requires_grad=True)
        b = Tensor(np.zeros(3, dtype=dt), requires_grad=True)
        out, _mean, _var = F.batch_norm_train(x, w, b, axes=(0, 2, 3),
                                              param_shape=(1, 3, 1, 1),
                                              eps=1e-5)
        return out.sum(), [x, w, b]

    def cross_entropy(rng, dt):
        logits = Tensor(rng.normal(size=(8, 5)).astype(dt), requires_grad=True)
        labels = np.array([0, 1, 2, 3, 4, 0, 1, 2])
        return F.cross_entropy(logits, labels), [logits]

    def hardswish(rng, dt):
        x = Tensor(rng.normal(size=(4, 7)).astype(dt), requires_grad=True)
        return F.hardswish(x).sum(), [x]

    def max_pool(rng, dt):
        x = Tensor(rng.normal(size=(2, 3, 6, 6)).astype(dt), requires_grad=True)
        return F.max_pool2d(x, 2).sum(), [x]

    def global_pool(rng, dt):
        x = Tensor(rng.normal(size=(2, 3, 6, 6)).astype(dt), requires_grad=True)
        return F.global_avg_pool2d(x).sum(), [x]

    return [
        pytest.param(fn, id=fn.__name__)
        for fn in (linear, conv, depthwise, bn_train, cross_entropy,
                   hardswish, max_pool, global_pool)
    ]


class TestKernelFloat32Equivalence:
    """Every kernel runs natively in float32 (no silent float64 temporaries
    leaking into outputs/gradients) and agrees with float64 to tolerance."""

    @pytest.mark.parametrize("engine", ["flat", "reference"])
    @pytest.mark.parametrize("builder", _kernel_cases())
    def test_kernel(self, builder, engine):
        def run(dtype_name):
            np_dtype = np.dtype(dtype_name)
            with engine_mode(engine), dtype_mode(dtype_name):
                loss, inputs = builder(np.random.default_rng(0), np_dtype)
                loss.backward()
            return loss, inputs

        loss64, inputs64 = run("float64")
        loss32, inputs32 = run("float32")
        assert loss32.data.dtype == np.float32
        for tensor in inputs32:
            assert tensor.grad is not None
            assert tensor.grad.dtype == np.float32
        np.testing.assert_allclose(loss32.data, loss64.data,
                                   rtol=1e-4, atol=1e-5)
        for t32, t64 in zip(inputs32, inputs64):
            np.testing.assert_allclose(t32.grad, t64.grad,
                                       rtol=1e-3, atol=1e-4)


class TestAggregationDtype:
    def _states(self, dtype, n=4):
        rng = np.random.default_rng(7)
        return [{"w": rng.normal(size=(3, 2)).astype(dtype),
                 "b": rng.normal(size=4).astype(dtype)} for _ in range(n)]

    @pytest.mark.parametrize("engine", ["flat", "reference"])
    def test_average_states_float32_accumulates_in_float64(self, engine):
        states32 = self._states(np.float32)
        states64 = [{k: v.astype(np.float64) for k, v in s.items()}
                    for s in states32]
        weights = [3.0, 1.0, 4.0, 1.0]
        with engine_mode(engine):
            avg32 = average_states(states32, weights)
            avg64 = average_states(states64, weights)
        for key, value in avg32.items():
            assert value.dtype == np.float32
            # The float64 accumulator means the float32 result is the float64
            # average rounded once, not a drifting float32 running sum.
            np.testing.assert_array_equal(
                value, avg64[key].astype(np.float32))

    @pytest.mark.parametrize("engine", ["flat", "reference"])
    def test_streaming_averager_matches_materialized(self, engine):
        states = self._states(np.float32, n=5)
        weights = [2.0, 5.0, 1.0, 3.0, 4.0]
        with engine_mode(engine):
            averager = StreamingAverager(len(states), weights)
            for state in states:
                averager.add(state)
            streamed = averager.finalize()
            materialized = average_states(states, weights)
        assert all(v.dtype == np.float32 for v in streamed.values())
        assert states_equal(streamed, materialized)

    def test_layout_dtype_follows_state(self):
        assert StateLayout(self._states(np.float32)[0]).dtype == np.float32
        assert StateLayout(self._states(np.float64)[0]).dtype == np.float64

    def test_pack_unpack_roundtrip_float32(self):
        state = self._states(np.float32)[0]
        layout = StateLayout(state)
        vector = layout.pack(state)
        assert vector.dtype == np.float32
        assert states_equal(layout.unpack(vector), state)


class TestStatesAllclose:
    def _state(self, jitter=0.0, dtype=np.float64):
        rng = np.random.default_rng(3)
        base = {"w": rng.normal(size=(4, 2)), "b": rng.normal(size=3)}
        return {k: (v + jitter).astype(dtype) for k, v in base.items()}

    def test_identical_states_pass(self):
        a = self._state()
        assert states_allclose(a, {k: v.copy() for k, v in a.items()})

    def test_within_tolerance_passes(self):
        assert states_allclose(self._state(), self._state(jitter=1e-9))

    def test_float32_vs_float64_comparison(self):
        a = self._state()
        b = {k: v.astype(np.float32) for k, v in a.items()}
        assert states_allclose(a, b, rtol=1e-5, atol=1e-6)

    def test_key_mismatch_raises_keyerror(self):
        a = self._state()
        b = dict(a)
        b["extra"] = np.zeros(2)
        with pytest.raises(KeyError):
            states_allclose(a, b)

    def test_shape_mismatch_raises_valueerror(self):
        a = self._state()
        b = {k: v.copy() for k, v in a.items()}
        b["b"] = np.zeros(7)
        with pytest.raises(ValueError, match="shape"):
            states_allclose(a, b)

    def test_failure_reports_max_ulp_per_key(self):
        a = self._state()
        b = {k: v.copy() for k, v in a.items()}
        b["w"] = b["w"] + 1.0
        with pytest.raises(AssertionError) as excinfo:
            states_allclose(a, b)
        message = str(excinfo.value)
        assert "'w'" in message
        assert "max ulp" in message
        assert "max abs err" in message

    def test_one_ulp_apart_within_default_tolerance(self):
        a = {"x": np.array([1.0, 2.0, 4.0])}
        b = {"x": np.nextafter(a["x"], np.inf)}
        assert states_allclose(a, b)


class TestConfigAndSpecDtype:
    def test_config_default_and_validation(self):
        assert FLConfig(num_clients=2, clients_per_round=1).dtype == "float64"
        config = FLConfig(num_clients=2, clients_per_round=1, dtype="float32")
        assert config.dtype == "float32"
        with pytest.raises(ValueError, match="dtype"):
            FLConfig(num_clients=2, clients_per_round=1, dtype="float16")

    def test_spec_json_roundtrip_preserves_dtype(self):
        spec = RunSpec(strategy="fedavg", scale="smoke",
                       config_overrides={"dtype": "float32"})
        restored = RunSpec.from_json(json.dumps(json.loads(spec.to_json())))
        assert restored.config_overrides["dtype"] == "float32"
        assert restored == spec

    def test_spec_hash_depends_on_dtype(self):
        base = RunSpec(strategy="fedavg", scale="smoke")
        fast = base.with_overrides(config_overrides={"dtype": "float32"})
        assert spec_hash(base) != spec_hash(fast)


class TestLayerDtype:
    def test_load_state_casts_to_model_dtype(self):
        with dtype_mode("float32"):
            model = Linear(4, 3)
        state64 = {key: value.astype(np.float64)
                   for key, value in model.state_dict().items()}
        model.load_state_dict(state64)
        for param in model.parameters():
            assert param.data.dtype == np.float32

    def test_buffers_registered_in_engine_dtype(self):
        class WithBuffer(Module):
            def __init__(self):
                super().__init__()
                self.register_buffer("running", [0.0, 1.0])

        assert WithBuffer()._buffers["running"].dtype == np.float64
        with dtype_mode("float32"):
            assert WithBuffer()._buffers["running"].dtype == np.float32
