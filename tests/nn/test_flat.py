"""Tests for the contiguous flat-parameter arena (:mod:`repro.nn.flat`)."""

import numpy as np
import pytest

from repro.nn.flat import FlatParams, flat_arena_of
from repro.nn.layers import Linear, Parameter, Sequential
from repro.nn.models import SimpleMLP
from repro.nn.serialization import states_equal
from repro.nn.tensor import Tensor


def small_model():
    return SimpleMLP(6, 3, hidden=4, seed=0)


class TestArenaConstruction:
    def test_params_become_views_with_same_values(self):
        model = small_model()
        before = {name: p.data.copy() for name, p in model.named_parameters()}
        arena = FlatParams.from_module(model)
        for name, param in model.named_parameters():
            assert param.data.base is arena.vector
            np.testing.assert_array_equal(param.data, before[name])

    def test_vector_is_contiguous_and_covers_all_params(self):
        model = small_model()
        arena = FlatParams.from_module(model)
        assert arena.vector.flags.c_contiguous
        assert arena.size == sum(p.size for p in model.parameters())

    def test_views_alias_the_vector(self):
        model = small_model()
        arena = FlatParams.from_module(model)
        arena.vector[:] = 7.0
        for param in model.parameters():
            assert (param.data == 7.0).all()

    def test_in_place_param_update_hits_vector(self):
        model = small_model()
        arena = FlatParams.from_module(model)
        first = model.parameters()[0]
        first.data -= first.data  # zero it in place
        assert (arena.vector[: first.size] == 0.0).all()

    def test_from_module_caches(self):
        model = small_model()
        assert FlatParams.from_module(model) is FlatParams.from_module(model)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            FlatParams([])

    def test_non_float64_rejected(self):
        param = Parameter(np.zeros(3))
        param.data = np.zeros(3, dtype=np.float32)
        with pytest.raises(TypeError):
            FlatParams([param])


class TestAdopt:
    def test_adopt_reuses_module_arena(self):
        model = small_model()
        arena = FlatParams.from_module(model)
        assert FlatParams.adopt(model.parameters()) is arena

    def test_adopt_builds_fresh_for_bare_params(self):
        params = [Parameter(np.arange(3, dtype=float)), Parameter(np.ones((2, 2)))]
        arena = FlatParams.adopt(params)
        assert arena.size == 7
        np.testing.assert_array_equal(arena.vector[:3], [0, 1, 2])

    def test_adopt_rejects_stale_views(self):
        model = small_model()
        arena = FlatParams.from_module(model)
        # Rebinding a parameter's data invalidates the arena...
        model.fc1.weight.data = model.fc1.weight.data.copy()
        assert not arena.is_valid()
        # ...so adoption (and the module cache) build a fresh one.
        assert FlatParams.adopt(model.parameters()) is not arena
        assert FlatParams.from_module(model) is not arena

    def test_adopt_subset_gets_own_arena(self):
        model = small_model()
        arena = FlatParams.from_module(model)
        subset = model.parameters()[:2]
        assert FlatParams.adopt(subset) is not arena


class TestGatherGrad:
    def test_no_grads_returns_none(self):
        arena = FlatParams.adopt([Parameter(np.zeros(3))])
        grad, complete = arena.gather_grad()
        assert grad is None and not complete

    def test_full_coverage(self):
        params = [Parameter(np.zeros(2)), Parameter(np.zeros((2, 2)))]
        arena = FlatParams.adopt(params)
        params[0].grad = np.array([1.0, 2.0])
        params[1].grad = np.arange(4.0).reshape(2, 2)
        grad, complete = arena.gather_grad()
        assert complete
        np.testing.assert_array_equal(grad, [1, 2, 0, 1, 2, 3])

    def test_partial_coverage_skips_the_copy(self):
        params = [Parameter(np.zeros(2)), Parameter(np.zeros(2))]
        arena = FlatParams.adopt(params)
        params[0].grad = np.ones(2)
        grad, any_grad = arena.gather_grad()
        # Partial coverage: no buffer is filled (the caller falls back to the
        # per-parameter path), but the presence flag is set.
        assert grad is None and any_grad


class TestStateDictBoundary:
    def test_state_dict_matches_module(self):
        model = small_model()
        reference = model.state_dict()
        arena = FlatParams.from_module(model)
        assert states_equal(arena.state_dict(), reference)
        assert list(arena.state_dict()) == list(reference)

    def test_state_dict_param_entries_share_one_copy(self):
        model = small_model()
        arena = FlatParams.from_module(model)
        state = arena.state_dict()
        bases = {id(value.base) for name, value in state.items()
                 if name in dict(model.named_parameters())}
        assert len(bases) == 1
        # The snapshot is detached from the live arena.
        arena.vector[:] = -1.0
        assert not (next(iter(state.values())) == -1.0).all()

    def test_load_state_dict_round_trip(self):
        model = small_model()
        arena = FlatParams.from_module(model)
        state = {key: np.full_like(value, 0.5) for key, value in model.state_dict().items()}
        arena.load_state_dict(state)
        assert states_equal(model.state_dict(), state)

    def test_load_missing_key_raises(self):
        model = small_model()
        arena = FlatParams.from_module(model)
        with pytest.raises(KeyError):
            arena.load_state_dict({})

    def test_load_shape_mismatch_raises(self):
        model = small_model()
        arena = FlatParams.from_module(model)
        state = model.state_dict()
        first = next(iter(state))
        state[first] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            arena.load_state_dict(state)

    def test_bare_arena_has_no_state_dict(self):
        arena = FlatParams.adopt([Parameter(np.zeros(2))])
        with pytest.raises(RuntimeError):
            arena.state_dict()

    def test_load_state_dict_updates_buffers(self):
        from repro.nn.layers import BatchNorm1d

        model = Sequential(Linear(4, 3, rng=np.random.default_rng(0)), BatchNorm1d(3))
        arena = FlatParams.from_module(model)
        state = model.state_dict()
        state["layer1.running_mean"] = np.array([1.0, 2.0, 3.0])
        arena.load_state_dict(state)
        np.testing.assert_array_equal(
            model.state_dict()["layer1.running_mean"], [1.0, 2.0, 3.0]
        )


class TestTrainingThroughArena:
    def test_forward_backward_identical_to_unflattened(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(5, 6))
        y = rng.integers(0, 3, size=5)
        from repro.nn import functional as F

        plain = small_model()
        flat = small_model()
        FlatParams.from_module(flat)
        for model in (plain, flat):
            loss = F.cross_entropy(model(Tensor(x)), y)
            loss.backward()
        for p_plain, p_flat in zip(plain.parameters(), flat.parameters()):
            assert p_plain.grad.tobytes() == p_flat.grad.tobytes()

    def test_stale_arena_readopted_by_optimizer_step(self):
        """Regression: an optimizer built before the training loop flattens
        the model must not write updates into an orphaned arena."""
        from repro.nn.optim import SGD

        model = small_model()
        opt = SGD(model.parameters(), lr=0.5, fused=True)  # anonymous arena
        # The training loop re-flattens the model, invalidating opt's arena.
        FlatParams.from_module(model)
        assert not opt._flat.is_valid()
        before = model.parameters()[0].data.copy()
        for param in model.parameters():
            param.grad = np.ones_like(param.data)
        opt.step()
        assert opt._flat.is_valid()
        assert not np.array_equal(model.parameters()[0].data, before), \
            "step wrote into the orphaned arena instead of the live weights"

    def test_flat_arena_of(self):
        model = small_model()
        assert flat_arena_of(model) is None
        arena = FlatParams.from_module(model)
        assert flat_arena_of(model) is arena
        model.fc1.weight.data = model.fc1.weight.data.copy()
        assert flat_arena_of(model) is None
