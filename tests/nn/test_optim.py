"""Tests for SGD, momentum, weight decay, and the FedProx proximal optimizer."""

import numpy as np
import pytest

from repro.nn.layers import Linear, Parameter
from repro.nn.optim import SGD, ProximalSGD
from repro.nn.tensor import Tensor


def make_param(values) -> Parameter:
    p = Parameter(np.asarray(values, dtype=float))
    return p


class TestSGD:
    def test_basic_step(self):
        p = make_param([1.0, 2.0])
        p.grad = np.array([0.5, 1.0])
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95, 1.9])

    def test_skips_params_without_grad(self):
        p = make_param([1.0])
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_zero_grad(self):
        p = make_param([1.0])
        p.grad = np.array([1.0])
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None

    def test_weight_decay_shrinks_weights(self):
        p = make_param([10.0])
        p.grad = np.array([0.0])
        SGD([p], lr=0.1, weight_decay=0.5).step()
        assert p.data[0] < 10.0

    def test_momentum_accelerates(self):
        # With a constant gradient, momentum accumulates larger steps.
        plain = make_param([0.0])
        momentum = make_param([0.0])
        opt_plain = SGD([plain], lr=0.1)
        opt_momentum = SGD([momentum], lr=0.1, momentum=0.9)
        for _ in range(5):
            plain.grad = np.array([1.0])
            momentum.grad = np.array([1.0])
            opt_plain.step()
            opt_momentum.step()
        assert momentum.data[0] < plain.data[0]  # moved further in the -grad direction

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([make_param([1.0])], lr=0.0)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([make_param([1.0])], lr=0.1, momentum=1.5)

    def test_invalid_weight_decay(self):
        with pytest.raises(ValueError):
            SGD([make_param([1.0])], lr=0.1, weight_decay=-1.0)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_converges_on_quadratic(self):
        p = make_param([5.0])
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            p.grad = 2 * p.data  # d/dp p^2
            opt.step()
        assert abs(p.data[0]) < 1e-3


class TestProximalSGD:
    def test_pulls_towards_reference(self):
        p = make_param([0.0])
        opt = ProximalSGD([p], lr=0.1, mu=1.0)
        opt.set_reference([np.array([10.0])])
        for _ in range(50):
            p.grad = np.array([0.0])  # no task gradient; only proximal pull
            opt.step()
        # Proximal gradient mu*(w - ref) pushes w *away from* ref in gradient
        # descent only if w > ref; starting at 0 below ref=10 it moves toward it.
        assert p.data[0] > 0.0

    def test_mu_zero_equals_sgd(self):
        p1, p2 = make_param([1.0]), make_param([1.0])
        prox = ProximalSGD([p1], lr=0.1, mu=0.0)
        prox.set_reference([np.array([100.0])])
        sgd = SGD([p2], lr=0.1)
        p1.grad = np.array([1.0])
        p2.grad = np.array([1.0])
        prox.step()
        sgd.step()
        np.testing.assert_allclose(p1.data, p2.data)

    def test_limits_drift_from_reference(self):
        """With a large mu the iterate stays closer to the reference point."""
        def run(mu):
            p = make_param([0.0])
            opt = ProximalSGD([p], lr=0.1, mu=mu)
            opt.set_reference([np.array([0.0])])
            for _ in range(20):
                p.grad = np.array([-1.0])  # constant pull away from the reference
                opt.step()
            return abs(p.data[0])

        assert run(mu=10.0) < run(mu=0.0)

    def test_reference_length_mismatch(self):
        opt = ProximalSGD([make_param([1.0])], lr=0.1, mu=0.1)
        with pytest.raises(ValueError):
            opt.set_reference([np.array([1.0]), np.array([2.0])])

    def test_negative_mu_rejected(self):
        with pytest.raises(ValueError):
            ProximalSGD([make_param([1.0])], lr=0.1, mu=-0.1)

    def test_works_through_model_training(self):
        from repro.nn import functional as F

        rng = np.random.default_rng(0)
        model = Linear(4, 2, rng=rng)
        reference = [p.data.copy() for p in model.parameters()]
        opt = ProximalSGD(model.parameters(), lr=0.1, mu=0.5)
        opt.set_reference(reference)
        x = rng.normal(size=(8, 4))
        y = rng.integers(0, 2, size=8)
        for _ in range(5):
            loss = F.cross_entropy(model(Tensor(x)), y)
            opt.zero_grad()
            loss.backward()
            opt.step()
        # Training changed the weights but they stay in a bounded neighbourhood.
        drift = sum(np.abs(p.data - r).max() for p, r in zip(model.parameters(), reference))
        assert 0 < drift < 10.0
