"""Tests for SGD, momentum, weight decay, and the FedProx proximal optimizer."""

import numpy as np
import pytest

from repro.nn.layers import Linear, Parameter
from repro.nn.optim import SGD, ProximalSGD
from repro.nn.tensor import Tensor


def make_param(values) -> Parameter:
    p = Parameter(np.asarray(values, dtype=float))
    return p


class TestSGD:
    def test_basic_step(self):
        p = make_param([1.0, 2.0])
        p.grad = np.array([0.5, 1.0])
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95, 1.9])

    def test_skips_params_without_grad(self):
        p = make_param([1.0])
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_zero_grad(self):
        p = make_param([1.0])
        p.grad = np.array([1.0])
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None

    def test_weight_decay_shrinks_weights(self):
        p = make_param([10.0])
        p.grad = np.array([0.0])
        SGD([p], lr=0.1, weight_decay=0.5).step()
        assert p.data[0] < 10.0

    def test_momentum_accelerates(self):
        # With a constant gradient, momentum accumulates larger steps.
        plain = make_param([0.0])
        momentum = make_param([0.0])
        opt_plain = SGD([plain], lr=0.1)
        opt_momentum = SGD([momentum], lr=0.1, momentum=0.9)
        for _ in range(5):
            plain.grad = np.array([1.0])
            momentum.grad = np.array([1.0])
            opt_plain.step()
            opt_momentum.step()
        assert momentum.data[0] < plain.data[0]  # moved further in the -grad direction

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([make_param([1.0])], lr=0.0)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([make_param([1.0])], lr=0.1, momentum=1.5)

    def test_invalid_weight_decay(self):
        with pytest.raises(ValueError):
            SGD([make_param([1.0])], lr=0.1, weight_decay=-1.0)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_converges_on_quadratic(self):
        p = make_param([5.0])
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            p.grad = 2 * p.data  # d/dp p^2
            opt.step()
        assert abs(p.data[0]) < 1e-3


class TestProximalSGD:
    def test_pulls_towards_reference(self):
        p = make_param([0.0])
        opt = ProximalSGD([p], lr=0.1, mu=1.0)
        opt.set_reference([np.array([10.0])])
        for _ in range(50):
            p.grad = np.array([0.0])  # no task gradient; only proximal pull
            opt.step()
        # Proximal gradient mu*(w - ref) pushes w *away from* ref in gradient
        # descent only if w > ref; starting at 0 below ref=10 it moves toward it.
        assert p.data[0] > 0.0

    def test_mu_zero_equals_sgd(self):
        p1, p2 = make_param([1.0]), make_param([1.0])
        prox = ProximalSGD([p1], lr=0.1, mu=0.0)
        prox.set_reference([np.array([100.0])])
        sgd = SGD([p2], lr=0.1)
        p1.grad = np.array([1.0])
        p2.grad = np.array([1.0])
        prox.step()
        sgd.step()
        np.testing.assert_allclose(p1.data, p2.data)

    def test_limits_drift_from_reference(self):
        """With a large mu the iterate stays closer to the reference point."""
        def run(mu):
            p = make_param([0.0])
            opt = ProximalSGD([p], lr=0.1, mu=mu)
            opt.set_reference([np.array([0.0])])
            for _ in range(20):
                p.grad = np.array([-1.0])  # constant pull away from the reference
                opt.step()
            return abs(p.data[0])

        assert run(mu=10.0) < run(mu=0.0)

    def test_reference_length_mismatch(self):
        opt = ProximalSGD([make_param([1.0])], lr=0.1, mu=0.1)
        with pytest.raises(ValueError):
            opt.set_reference([np.array([1.0]), np.array([2.0])])

    def test_negative_mu_rejected(self):
        with pytest.raises(ValueError):
            ProximalSGD([make_param([1.0])], lr=0.1, mu=-0.1)

    def test_works_through_model_training(self):
        from repro.nn import functional as F

        rng = np.random.default_rng(0)
        model = Linear(4, 2, rng=rng)
        reference = [p.data.copy() for p in model.parameters()]
        opt = ProximalSGD(model.parameters(), lr=0.1, mu=0.5)
        opt.set_reference(reference)
        x = rng.normal(size=(8, 4))
        y = rng.integers(0, 2, size=8)
        for _ in range(5):
            loss = F.cross_entropy(model(Tensor(x)), y)
            opt.zero_grad()
            loss.backward()
            opt.step()
        # Training changed the weights but they stay in a bounded neighbourhood.
        drift = sum(np.abs(p.data - r).max() for p, r in zip(model.parameters(), reference))
        assert 0 < drift < 10.0


class TestFusedMatchesReference:
    """The fused flat-vector step must be bitwise-equal to the per-parameter
    reference loop for every supported hyperparameter combination."""

    SHAPES = [(4, 3), (3,), (2, 2, 2), (5,)]

    def _step_pair(self, fused_opt, ref_opt, params_f, params_r, steps=5):
        rng = np.random.default_rng(7)
        for step in range(steps):
            for p_f, p_r in zip(params_f, params_r):
                grad = rng.normal(size=p_f.data.shape)
                p_f.grad = grad.copy()
                p_r.grad = grad.copy()
            fused_opt.step()
            ref_opt.step()
        for p_f, p_r in zip(params_f, params_r):
            assert p_f.data.tobytes() == p_r.data.tobytes()

    @pytest.mark.parametrize("momentum", [0.0, 0.5, 0.9])
    @pytest.mark.parametrize("weight_decay", [0.0, 1e-4, 0.1])
    def test_sgd_grid(self, momentum, weight_decay):
        rng = np.random.default_rng(0)
        values = [rng.normal(size=shape) for shape in self.SHAPES]
        params_f = [make_param(v.copy()) for v in values]
        params_r = [make_param(v.copy()) for v in values]
        fused = SGD(params_f, lr=0.05, momentum=momentum,
                    weight_decay=weight_decay, fused=True)
        ref = SGD(params_r, lr=0.05, momentum=momentum,
                  weight_decay=weight_decay, fused=False)
        self._step_pair(fused, ref, params_f, params_r)

    @pytest.mark.parametrize("momentum", [0.0, 0.9])
    @pytest.mark.parametrize("weight_decay", [0.0, 1e-3])
    @pytest.mark.parametrize("mu", [0.0, 0.1, 1.0])
    def test_proximal_grid(self, momentum, weight_decay, mu):
        rng = np.random.default_rng(1)
        values = [rng.normal(size=shape) for shape in self.SHAPES]
        refs = [rng.normal(size=shape) for shape in self.SHAPES]
        params_f = [make_param(v.copy()) for v in values]
        params_r = [make_param(v.copy()) for v in values]
        fused = ProximalSGD(params_f, lr=0.05, mu=mu, momentum=momentum,
                            weight_decay=weight_decay, fused=True)
        ref = ProximalSGD(params_r, lr=0.05, mu=mu, momentum=momentum,
                          weight_decay=weight_decay, fused=False)
        fused.set_reference([r.copy() for r in refs])
        ref.set_reference([r.copy() for r in refs])
        self._step_pair(fused, ref, params_f, params_r)

    def test_partial_grad_coverage_matches(self):
        """Params without grads are skipped identically in both paths,
        including their momentum state, even when coverage changes per step."""
        rng = np.random.default_rng(2)
        values = [rng.normal(size=(3,)) for _ in range(3)]
        params_f = [make_param(v.copy()) for v in values]
        params_r = [make_param(v.copy()) for v in values]
        fused = SGD(params_f, lr=0.1, momentum=0.9, fused=True)
        ref = SGD(params_r, lr=0.1, momentum=0.9, fused=False)
        coverage = [(0, 2), (0, 1, 2), (1,), (0, 1, 2)]
        for step, present in enumerate(coverage):
            for index in range(3):
                grad = rng.normal(size=3)
                params_f[index].grad = grad.copy() if index in present else None
                params_r[index].grad = grad.copy() if index in present else None
            fused.step()
            ref.step()
            for p_f, p_r in zip(params_f, params_r):
                assert p_f.data.tobytes() == p_r.data.tobytes(), f"step {step}"

    def test_no_grads_is_a_noop(self):
        param = make_param([1.0, 2.0])
        before = param.data.copy()
        SGD([param], lr=0.1, fused=True).step()
        np.testing.assert_array_equal(param.data, before)

    def test_fused_through_model_training_matches(self):
        from repro.nn import functional as F
        from repro.nn.models import SimpleMLP

        rng = np.random.default_rng(3)
        x = rng.normal(size=(8, 6))
        y = rng.integers(0, 3, size=8)
        states = {}
        for fused in (True, False):
            model = SimpleMLP(6, 3, hidden=4, seed=0)
            opt = SGD(model.parameters(), lr=0.05, momentum=0.9,
                      weight_decay=1e-4, fused=fused)
            for _ in range(4):
                loss = F.cross_entropy(model(Tensor(x)), y)
                opt.zero_grad()
                loss.backward()
                opt.step()
            states[fused] = model.state_dict()
        for key in states[True]:
            assert states[True][key].tobytes() == states[False][key].tobytes()


class TestVelocityKeyedByIndex:
    """Regression for the id(param)-keyed velocity dict: a recycled object
    address must never inherit another parameter's momentum state."""

    def test_reference_velocity_uses_indices(self):
        params = [make_param([1.0]), make_param([2.0])]
        opt = SGD(params, lr=0.1, momentum=0.9, fused=False)
        for param in params:
            param.grad = np.ones(1)
        opt.step()
        assert set(opt._velocity) <= {0, 1}

    def test_velocity_survives_id_reuse(self):
        """Replacing a parameter list entry cannot alias old velocity state:
        a fresh optimizer over a fresh (possibly same-id) parameter starts
        from zero momentum."""
        def run_with_gc_churn():
            param = make_param([0.0])
            opt = SGD([param], lr=0.1, momentum=0.9, fused=False)
            param.grad = np.ones(1)
            opt.step()
            return param.data.copy()

        first = run_with_gc_churn()
        # Allocate garbage so a naive id()-keyed store would likely see the
        # same address again, then repeat: the result must be identical.
        import gc
        gc.collect()
        second = run_with_gc_churn()
        np.testing.assert_array_equal(first, second)


class TestProximalGradNotMutated:
    def test_step_leaves_param_grad_untouched(self):
        """The proximal term must not leak into the stored gradient
        (batch hooks read .grad after the step)."""
        for fused in (True, False):
            param = make_param([2.0, -1.0])
            opt = ProximalSGD([param], lr=0.1, mu=0.5, fused=fused)
            opt.set_reference([np.zeros(2)])
            grad = np.array([0.25, 0.75])
            param.grad = grad
            opt.step()
            assert param.grad is grad, "stored gradient was rebound"
            np.testing.assert_array_equal(param.grad, [0.25, 0.75])


class TestOptimizerValidation:
    def test_reference_shape_mismatch_rejected(self):
        opt = ProximalSGD([make_param([1.0, 2.0])], lr=0.1, mu=0.1)
        with pytest.raises(ValueError):
            opt.set_reference([np.zeros((2, 2))])

    def test_fused_flag_exposed(self):
        assert SGD([make_param([1.0])], lr=0.1).fused
        assert not SGD([make_param([1.0])], lr=0.1, fused=False).fused

    def test_fused_optimizer_adopts_module_arena(self):
        from repro.nn.flat import FlatParams
        from repro.nn.models import SimpleMLP

        model = SimpleMLP(4, 2, hidden=3, seed=0)
        arena = FlatParams.from_module(model)
        opt = SGD(model.parameters(), lr=0.1, fused=True)
        assert opt._flat is arena
