"""Tests for layer modules: registration, state dicts, batch norm, sequencing."""

import numpy as np
import pytest

from repro.nn.layers import (
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from repro.nn.tensor import Tensor


class TestModuleRegistration:
    def test_parameters_discovered(self):
        layer = Linear(4, 3)
        names = [name for name, _ in layer.named_parameters()]
        assert set(names) == {"weight", "bias"}

    def test_nested_module_parameters(self):
        model = Sequential(Linear(4, 8), ReLU(), Linear(8, 2))
        names = [name for name, _ in model.named_parameters()]
        assert "layer0.weight" in names and "layer2.bias" in names
        assert len(model.parameters()) == 4

    def test_num_parameters(self):
        layer = Linear(4, 3)
        assert layer.num_parameters() == 4 * 3 + 3

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False)
        assert len(layer.parameters()) == 1

    def test_train_eval_propagates(self):
        model = Sequential(Linear(2, 2), Dropout(0.5))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad_clears_all(self):
        model = Linear(3, 2)
        out = model(Tensor(np.ones((1, 3))))
        out.sum().backward()
        assert model.weight.grad is not None
        model.zero_grad()
        assert model.weight.grad is None

    def test_modules_iterates_all(self):
        model = Sequential(Linear(2, 2), ReLU())
        assert len(list(model.modules())) == 3  # Sequential + 2 children


class TestStateDict:
    def test_round_trip(self):
        src = Linear(5, 4, rng=np.random.default_rng(1))
        dst = Linear(5, 4, rng=np.random.default_rng(2))
        assert not np.allclose(src.weight.data, dst.weight.data)
        dst.load_state_dict(src.state_dict())
        np.testing.assert_allclose(src.weight.data, dst.weight.data)

    def test_state_dict_returns_copies(self):
        layer = Linear(3, 2)
        state = layer.state_dict()
        state["weight"][...] = 99.0
        assert not np.allclose(layer.weight.data, 99.0)

    def test_missing_key_raises(self):
        layer = Linear(3, 2)
        state = layer.state_dict()
        del state["bias"]
        with pytest.raises(KeyError):
            layer.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        layer = Linear(3, 2)
        state = layer.state_dict()
        state["weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            layer.load_state_dict(state)

    def test_buffers_in_state_dict(self):
        bn = BatchNorm2d(4)
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state

    def test_buffer_round_trip(self):
        bn_src = BatchNorm2d(2)
        bn_src(Tensor(np.random.default_rng(0).normal(size=(8, 2, 3, 3))))
        bn_dst = BatchNorm2d(2)
        bn_dst.load_state_dict(bn_src.state_dict())
        np.testing.assert_allclose(
            bn_dst.state_dict()["running_mean"], bn_src.state_dict()["running_mean"]
        )

    def test_nested_state_dict_keys(self):
        model = Sequential(Conv2d(3, 4, 3), BatchNorm2d(4))
        keys = set(model.state_dict())
        assert "layer0.weight" in keys
        assert "layer1.running_mean" in keys


class TestBatchNorm:
    def test_training_normalizes_batch(self):
        bn = BatchNorm2d(3)
        x = Tensor(np.random.default_rng(0).normal(5.0, 2.0, size=(16, 3, 4, 4)))
        out = bn(x).data
        assert abs(out.mean()) < 1e-6
        assert abs(out.std() - 1.0) < 0.05

    def test_running_stats_updated(self):
        bn = BatchNorm2d(2)
        before = bn.state_dict()["running_mean"].copy()
        bn(Tensor(np.ones((4, 2, 3, 3)) * 10.0))
        after = bn.state_dict()["running_mean"]
        assert not np.allclose(before, after)
        assert (after > 0).all()

    def test_eval_uses_running_stats(self):
        bn = BatchNorm2d(2)
        rng = np.random.default_rng(0)
        for _ in range(50):
            bn(Tensor(rng.normal(3.0, 1.0, size=(16, 2, 4, 4))))
        bn.eval()
        out = bn(Tensor(np.full((1, 2, 4, 4), 3.0))).data
        # An input equal to the long-run mean should normalize to ~0.
        assert np.abs(out).max() < 0.3

    def test_affine_parameters_trainable(self):
        bn = BatchNorm2d(2)
        x = Tensor(np.random.default_rng(0).normal(size=(4, 2, 3, 3)))
        bn(x).sum().backward()
        assert bn.weight.grad is not None
        assert bn.bias.grad is not None

    def test_batchnorm1d(self):
        bn = BatchNorm1d(5)
        out = bn(Tensor(np.random.default_rng(0).normal(2.0, 3.0, size=(32, 5)))).data
        assert abs(out.mean()) < 1e-6


class TestIndividualLayers:
    def test_linear_shapes(self):
        out = Linear(6, 4)(Tensor(np.zeros((3, 6))))
        assert out.shape == (3, 4)

    def test_conv_layer_shapes(self):
        out = Conv2d(3, 8, 3, stride=2, padding=1)(Tensor(np.zeros((2, 3, 8, 8))))
        assert out.shape == (2, 8, 4, 4)

    def test_depthwise_layer_shapes(self):
        out = DepthwiseConv2d(4, 3, padding=1)(Tensor(np.zeros((2, 4, 6, 6))))
        assert out.shape == (2, 4, 6, 6)

    def test_maxpool_layer(self):
        out = MaxPool2d(2)(Tensor(np.zeros((1, 2, 6, 6))))
        assert out.shape == (1, 2, 3, 3)

    def test_global_avg_pool_layer(self):
        out = GlobalAvgPool2d()(Tensor(np.zeros((2, 5, 4, 4))))
        assert out.shape == (2, 5)

    def test_flatten_layer(self):
        out = Flatten()(Tensor(np.zeros((2, 3, 2, 2))))
        assert out.shape == (2, 12)

    def test_identity(self):
        x = Tensor(np.arange(4, dtype=float))
        np.testing.assert_allclose(Identity()(x).data, x.data)

    def test_dropout_respects_training_flag(self):
        layer = Dropout(0.9, seed=0)
        layer.eval()
        x = Tensor(np.ones((10, 10)))
        np.testing.assert_allclose(layer(x).data, 1.0)

    def test_sequential_iteration_and_len(self):
        model = Sequential(Linear(2, 2), ReLU())
        assert len(model) == 2
        assert isinstance(list(model)[1], ReLU)

    def test_end_to_end_training_reduces_loss(self):
        """A small Sequential model should fit a separable toy problem."""
        from repro.nn import functional as F
        from repro.nn.optim import SGD

        rng = np.random.default_rng(0)
        x = rng.normal(size=(32, 4))
        y = (x[:, 0] > 0).astype(int)
        model = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
        opt = SGD(model.parameters(), lr=0.5)
        first_loss = None
        for _ in range(30):
            loss = F.cross_entropy(model(Tensor(x)), y)
            if first_loss is None:
                first_loss = float(loss.data)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert float(loss.data) < first_loss * 0.5


class TestBatchNormSinglePass:
    """Pins for the single-pass batch-norm forward.

    The training forward computes the batch statistics once (through the
    normalization path) and reuses them for the running-stat update.  The
    normalized output is bitwise-identical to the seed's two-pass version;
    the running stats see a ``sum * (1/count)`` mean instead of NumPy's
    ``sum / count`` — the same reduction reassociated, pinned here to within
    a few ulp of the np.mean/np.var formulation.
    """

    def test_running_stats_match_numpy_formulation_to_ulp(self):
        rng = np.random.default_rng(0)
        x = rng.normal(3.0, 2.0, size=(8, 5, 4, 4))
        bn = BatchNorm2d(5, momentum=1.0)  # running stats = batch stats
        bn(Tensor(x))
        np.testing.assert_allclose(
            bn.state_dict()["running_mean"], x.mean(axis=(0, 2, 3)), rtol=1e-14
        )
        np.testing.assert_allclose(
            bn.state_dict()["running_var"], x.var(axis=(0, 2, 3)), rtol=1e-13
        )

    def test_running_stats_are_the_graph_formulation_exactly(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(6, 3, 5, 5))
        bn = BatchNorm2d(3, momentum=1.0)
        bn(Tensor(x))
        count = x.shape[0] * x.shape[2] * x.shape[3]
        mean = x.sum(axis=(0, 2, 3), keepdims=True) * (1.0 / count)
        centered = x + (-mean)
        var = (centered * centered).sum(axis=(0, 2, 3), keepdims=True) * (1.0 / count)
        assert bn.state_dict()["running_mean"].tobytes() == mean.reshape(3).tobytes()
        assert bn.state_dict()["running_var"].tobytes() == var.reshape(3).tobytes()

    def test_normalized_output_bitwise_unchanged_vs_seed_graph(self):
        """The seed's normalization graph (independent of its running-stat
        pass) must produce the same bits as the single-pass forward."""
        rng = np.random.default_rng(2)
        x_np = rng.normal(1.0, 3.0, size=(8, 4, 3, 3))
        bn = BatchNorm2d(4)
        out = bn(Tensor(x_np)).data

        x = Tensor(x_np.copy())
        axes, shape = (0, 2, 3), (1, 4, 1, 1)
        mean = x.mean(axis=axes, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=axes, keepdims=True)
        inv_std = (var + bn.eps) ** -0.5
        seed_out = ((centered * inv_std) * bn.weight.reshape(*shape)
                    + bn.bias.reshape(*shape)).data
        assert out.tobytes() == seed_out.tobytes()

    def test_train_and_eval_bitwise_across_engines(self):
        from repro.nn.engine import engine_mode

        rng = np.random.default_rng(3)
        x_np = rng.normal(2.0, 1.5, size=(6, 4, 4, 4))
        upstream = rng.normal(size=(6, 4, 4, 4))
        results = {}
        for mode in ("flat", "reference"):
            with engine_mode(mode):
                bn = BatchNorm2d(4)
                x = Tensor(x_np.copy(), requires_grad=True)
                out = bn(x)
                out.backward(upstream.copy())
                state = bn.state_dict()
                bn.eval()
                eval_out = bn(Tensor(x_np.copy())).data
                results[mode] = (out.data, x.grad, bn.weight.grad, bn.bias.grad,
                                 state["running_mean"], state["running_var"], eval_out)
        for index, (a, b) in enumerate(zip(results["flat"], results["reference"])):
            assert a.tobytes() == b.tobytes(), f"item {index}"
