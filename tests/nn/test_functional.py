"""Tests for functional ops: convolutions, pooling, activations, losses."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor


def scalar_loss_grad_check(build_loss, tensors, atol=1e-5):
    """Compare autograd gradients against central differences for each tensor."""
    loss = build_loss()
    loss.backward()
    grads = [t.grad.copy() for t in tensors]
    eps = 1e-6
    for t, grad in zip(tensors, grads):
        flat = t.data.reshape(-1)
        # Check a handful of coordinates to keep the test fast.
        rng = np.random.default_rng(0)
        for idx in rng.choice(flat.size, size=min(5, flat.size), replace=False):
            orig = flat[idx]
            flat[idx] = orig + eps
            f_plus = float(build_loss().data)
            flat[idx] = orig - eps
            f_minus = float(build_loss().data)
            flat[idx] = orig
            numerical = (f_plus - f_minus) / (2 * eps)
            assert abs(numerical - grad.reshape(-1)[idx]) < atol, (
                f"grad mismatch at {idx}: {numerical} vs {grad.reshape(-1)[idx]}"
            )


class TestConv2d:
    def test_identity_kernel_preserves_input(self):
        x = Tensor(np.random.default_rng(0).normal(size=(1, 1, 5, 5)))
        w = Tensor(np.array([[[[0, 0, 0], [0, 1, 0], [0, 0, 0]]]], dtype=float))
        out = F.conv2d(x, w, padding=1)
        np.testing.assert_allclose(out.data, x.data, atol=1e-12)

    def test_output_shape_stride_padding(self):
        x = Tensor(np.zeros((2, 3, 8, 8)))
        w = Tensor(np.zeros((4, 3, 3, 3)))
        assert F.conv2d(x, w, stride=2, padding=1).shape == (2, 4, 4, 4)
        assert F.conv2d(x, w, stride=1, padding=0).shape == (2, 4, 6, 6)

    def test_channel_mismatch_raises(self):
        x = Tensor(np.zeros((1, 2, 4, 4)))
        w = Tensor(np.zeros((1, 3, 3, 3)))
        with pytest.raises(ValueError):
            F.conv2d(x, w)

    def test_matches_naive_convolution(self):
        rng = np.random.default_rng(1)
        x_data = rng.normal(size=(1, 2, 5, 5))
        w_data = rng.normal(size=(3, 2, 3, 3))
        out = F.conv2d(Tensor(x_data), Tensor(w_data), padding=0).data
        # Naive reference.
        expected = np.zeros((1, 3, 3, 3))
        for oc in range(3):
            for i in range(3):
                for j in range(3):
                    expected[0, oc, i, j] = np.sum(
                        x_data[0, :, i : i + 3, j : j + 3] * w_data[oc]
                    )
        np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_bias_added_per_channel(self):
        x = Tensor(np.zeros((1, 1, 3, 3)))
        w = Tensor(np.zeros((2, 1, 3, 3)))
        b = Tensor(np.array([1.0, -2.0]))
        out = F.conv2d(x, w, b, padding=1)
        np.testing.assert_allclose(out.data[0, 0], 1.0)
        np.testing.assert_allclose(out.data[0, 1], -2.0)

    def test_gradient_check(self):
        rng = np.random.default_rng(2)
        x = Tensor(rng.normal(size=(2, 2, 5, 5)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2, 3, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=3), requires_grad=True)

        def build():
            x.zero_grad(), w.zero_grad(), b.zero_grad()
            return (F.conv2d(x, w, b, stride=1, padding=1) ** 2).sum()

        scalar_loss_grad_check(build, [x, w, b])


class TestDepthwiseConv2d:
    def test_output_shape(self):
        x = Tensor(np.zeros((2, 4, 8, 8)))
        w = Tensor(np.zeros((4, 1, 3, 3)))
        assert F.depthwise_conv2d(x, w, padding=1).shape == (2, 4, 8, 8)
        assert F.depthwise_conv2d(x, w, stride=2, padding=1).shape == (2, 4, 4, 4)

    def test_channels_independent(self):
        x_data = np.zeros((1, 2, 4, 4))
        x_data[0, 0] = 1.0  # only channel 0 has signal
        w = Tensor(np.ones((2, 1, 3, 3)))
        out = F.depthwise_conv2d(Tensor(x_data), w, padding=1)
        assert out.data[0, 1].max() == 0.0  # channel 1 untouched by channel 0
        assert out.data[0, 0].max() > 0.0

    def test_wrong_weight_shape_raises(self):
        x = Tensor(np.zeros((1, 2, 4, 4)))
        with pytest.raises(ValueError):
            F.depthwise_conv2d(x, Tensor(np.zeros((2, 2, 3, 3))))

    def test_gradient_check(self):
        rng = np.random.default_rng(3)
        x = Tensor(rng.normal(size=(1, 3, 5, 5)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 1, 3, 3)), requires_grad=True)

        def build():
            x.zero_grad(), w.zero_grad()
            return (F.depthwise_conv2d(x, w, padding=1) ** 2).sum()

        scalar_loss_grad_check(build, [x, w])


class TestPooling:
    def test_max_pool_values(self):
        x_data = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x_data), 2)
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_avg_pool_values(self):
        x_data = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x_data), 2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_max_pool_grad_goes_to_max_position(self):
        x = Tensor(np.arange(16, dtype=float).reshape(1, 1, 4, 4), requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        np.testing.assert_allclose(x.grad[0, 0], expected)

    def test_avg_pool_grad_uniform(self):
        x = Tensor(np.zeros((1, 1, 4, 4)), requires_grad=True)
        F.avg_pool2d(x, 2).sum().backward()
        np.testing.assert_allclose(x.grad[0, 0], 0.25)

    def test_global_avg_pool(self):
        x = Tensor(np.ones((2, 3, 4, 4)) * 5.0)
        out = F.global_avg_pool2d(x)
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out.data, 5.0)

    def test_pad2d(self):
        x = Tensor(np.ones((1, 1, 2, 2)), requires_grad=True)
        out = F.pad2d(x, 1)
        assert out.shape == (1, 1, 4, 4)
        assert out.data[0, 0, 0, 0] == 0.0
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((1, 1, 2, 2)))


class TestActivations:
    def test_relu6_clips_high(self):
        out = F.relu6(Tensor([-1.0, 3.0, 10.0]))
        np.testing.assert_allclose(out.data, [0.0, 3.0, 6.0])

    def test_hardsigmoid_range(self):
        x = Tensor(np.linspace(-10, 10, 50))
        out = F.hardsigmoid(x).data
        assert out.min() >= 0.0 and out.max() <= 1.0
        assert F.hardsigmoid(Tensor([0.0])).data[0] == pytest.approx(0.5)

    def test_hardswish_zero_at_negative_saturation(self):
        np.testing.assert_allclose(F.hardswish(Tensor([-5.0])).data, [0.0])

    def test_softmax_sums_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 7)))
        probs = F.softmax(x).data
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)
        assert (probs >= 0).all()

    def test_log_softmax_consistent_with_softmax(self):
        x = Tensor(np.random.default_rng(1).normal(size=(3, 5)))
        np.testing.assert_allclose(F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-10)

    def test_softmax_shift_invariance(self):
        x = np.random.default_rng(2).normal(size=(2, 4))
        np.testing.assert_allclose(
            F.softmax(Tensor(x)).data, F.softmax(Tensor(x + 100.0)).data, atol=1e-10
        )

    def test_channel_shuffle_permutes_channels(self):
        x_data = np.arange(4, dtype=float).reshape(1, 4, 1, 1) * np.ones((1, 4, 2, 2))
        out = F.channel_shuffle(Tensor(x_data), groups=2)
        assert out.shape == x_data.shape
        # After shuffling with 2 groups, channel order becomes [0, 2, 1, 3].
        np.testing.assert_allclose(out.data[0, :, 0, 0], [0.0, 2.0, 1.0, 3.0])

    def test_channel_shuffle_invalid_groups(self):
        with pytest.raises(ValueError):
            F.channel_shuffle(Tensor(np.zeros((1, 3, 2, 2))), groups=2)

    def test_flatten(self):
        out = F.flatten(Tensor(np.zeros((2, 3, 4, 4))))
        assert out.shape == (2, 48)

    def test_dropout_eval_is_identity(self):
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_allclose(F.dropout(x, 0.5, training=False).data, x.data)

    def test_dropout_training_scales_surviving_units(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((1000,)))
        out = F.dropout(x, 0.5, training=True, rng=rng).data
        surviving = out[out > 0]
        np.testing.assert_allclose(surviving, 2.0)
        assert 0.3 < (out > 0).mean() < 0.7


class TestLosses:
    def test_cross_entropy_uniform_logits(self):
        logits = Tensor(np.zeros((2, 4)))
        loss = F.cross_entropy(logits, np.array([0, 1]))
        assert float(loss.data) == pytest.approx(np.log(4))

    def test_cross_entropy_perfect_prediction_near_zero(self):
        logits = np.full((1, 3), -100.0)
        logits[0, 2] = 100.0
        loss = F.cross_entropy(Tensor(logits), np.array([2]))
        assert float(loss.data) == pytest.approx(0.0, abs=1e-6)

    def test_cross_entropy_gradient_check(self):
        rng = np.random.default_rng(4)
        logits = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
        targets = np.array([0, 1, 2, 3, 0])

        def build():
            logits.zero_grad()
            return F.cross_entropy(logits, targets)

        scalar_loss_grad_check(build, [logits])

    def test_bce_with_logits_matches_reference(self):
        logits = np.array([[0.5, -1.0], [2.0, 0.0]])
        targets = np.array([[1.0, 0.0], [0.0, 1.0]])
        loss = F.binary_cross_entropy_with_logits(Tensor(logits), targets)
        probs = 1 / (1 + np.exp(-logits))
        expected = -(targets * np.log(probs) + (1 - targets) * np.log(1 - probs)).mean()
        assert float(loss.data) == pytest.approx(expected, rel=1e-6)

    def test_bce_gradient_check(self):
        rng = np.random.default_rng(5)
        logits = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        targets = (rng.random((4, 3)) > 0.5).astype(float)

        def build():
            logits.zero_grad()
            return F.binary_cross_entropy_with_logits(logits, targets)

        scalar_loss_grad_check(build, [logits])

    def test_mse_loss(self):
        pred = Tensor(np.array([[1.0], [3.0]]))
        loss = F.mse_loss(pred, np.array([[0.0], [0.0]]))
        assert float(loss.data) == pytest.approx(5.0)

    def test_mse_gradient(self):
        pred = Tensor(np.array([[2.0]]), requires_grad=True)
        F.mse_loss(pred, np.array([[0.0]])).backward()
        np.testing.assert_allclose(pred.grad, [[4.0]])

    def test_l1_loss_positive(self):
        pred = Tensor(np.array([[1.0, -2.0]]))
        loss = F.l1_loss(pred, np.array([[0.0, 0.0]]))
        assert float(loss.data) == pytest.approx(1.5, rel=1e-4)


class TestEngineKernelEquivalence:
    """The flat engine's fused kernels must match the operator-composed
    reference bit-for-bit — forward values AND every gradient."""

    @staticmethod
    def _run_both(build):
        """Run `build(mode)` under each engine; returns the two result tuples."""
        from repro.nn.engine import engine_mode

        results = {}
        for mode in ("flat", "reference"):
            with engine_mode(mode):
                results[mode] = build()
        return results["flat"], results["reference"]

    @staticmethod
    def _assert_bitwise(flat, reference):
        for index, (a, b) in enumerate(zip(flat, reference)):
            assert np.asarray(a).tobytes() == np.asarray(b).tobytes(), f"item {index}"

    def test_linear_fused_bitwise(self):
        rng = np.random.default_rng(0)
        x_np, w_np, b_np = (rng.normal(size=(7, 5)), rng.normal(size=(4, 5)),
                            rng.normal(size=4))
        upstream = rng.normal(size=(7, 4))

        def build():
            from repro.nn.layers import Parameter

            x = Tensor(x_np.copy(), requires_grad=True)
            w, b = Parameter(w_np.copy()), Parameter(b_np.copy())
            out = F.linear(x, w, b)
            out.backward(upstream.copy())
            return out.data, x.grad, w.grad, b.grad

        self._assert_bitwise(*self._run_both(build))

    def test_linear_without_bias_fused_bitwise(self):
        rng = np.random.default_rng(1)
        x_np, w_np = rng.normal(size=(3, 5)), rng.normal(size=(2, 5))

        def build():
            from repro.nn.layers import Parameter

            x = Tensor(x_np.copy(), requires_grad=True)
            w = Parameter(w_np.copy())
            out = F.linear(x, w, None)
            out.sum().backward()
            return out.data, x.grad, w.grad

        self._assert_bitwise(*self._run_both(build))

    def test_cross_entropy_fused_bitwise(self):
        rng = np.random.default_rng(2)
        logits_np = rng.normal(scale=5.0, size=(9, 6))
        targets = rng.integers(0, 6, size=9)

        def build():
            logits = Tensor(logits_np.copy(), requires_grad=True)
            loss = F.cross_entropy(logits, targets)
            loss.backward()
            return np.asarray(loss.data), logits.grad

        self._assert_bitwise(*self._run_both(build))

    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 2)])
    def test_conv2d_bincount_col2im_bitwise(self, stride, padding):
        rng = np.random.default_rng(3)
        x_np = rng.normal(size=(3, 4, 8, 8))
        w_np = rng.normal(size=(5, 4, 3, 3))
        b_np = rng.normal(size=5)

        def build():
            from repro.nn.layers import Parameter

            x = Tensor(x_np.copy(), requires_grad=True)
            w, b = Parameter(w_np.copy()), Parameter(b_np.copy())
            out = F.conv2d(x, w, b, stride=stride, padding=padding)
            out.sum().backward()
            return out.data, x.grad, w.grad, b.grad

        self._assert_bitwise(*self._run_both(build))

    def test_depthwise_conv_bitwise(self):
        rng = np.random.default_rng(4)
        x_np = rng.normal(size=(2, 6, 10, 10))
        w_np = rng.normal(size=(6, 1, 3, 3))

        def build():
            from repro.nn.layers import Parameter

            x = Tensor(x_np.copy(), requires_grad=True)
            w = Parameter(w_np.copy())
            out = F.depthwise_conv2d(x, w, None, stride=2, padding=1)
            out.sum().backward()
            return out.data, x.grad, w.grad

        self._assert_bitwise(*self._run_both(build))

    def test_hardswish_fused_bitwise(self):
        rng = np.random.default_rng(5)
        x_np = rng.normal(scale=4.0, size=(16, 8))
        upstream = rng.normal(size=(16, 8))

        def build():
            x = Tensor(x_np.copy(), requires_grad=True)
            out = F.hardswish(x)
            out.backward(upstream.copy())
            return out.data, x.grad

        self._assert_bitwise(*self._run_both(build))

    def test_im2col_plan_is_cached_and_frozen(self):
        from repro.nn.functional import _im2col_plan

        plan_a = _im2col_plan((3, 8, 8), (3, 3), (1, 1), (1, 1))
        plan_b = _im2col_plan((3, 8, 8), (3, 3), (1, 1), (1, 1))
        assert plan_a[0] is plan_b[0]  # same cached arrays
        with pytest.raises(ValueError):
            plan_a[0][0] = 99  # read-only

    def test_reference_engine_is_default_off(self):
        from repro.nn.engine import current_engine

        assert current_engine() == "flat"

    def test_engine_mode_restores_previous(self):
        from repro.nn.engine import current_engine, engine_mode

        with engine_mode("reference"):
            assert current_engine() == "reference"
            with engine_mode("flat"):
                assert current_engine() == "flat"
            assert current_engine() == "reference"
        assert current_engine() == "flat"

    def test_engine_mode_rejects_unknown(self):
        from repro.nn.engine import engine_mode

        with pytest.raises(ValueError):
            engine_mode("turbo")

    def test_bce_gradients_still_flow(self):
        """Regression: removing the dead zeros/max/abs tensors must not
        change the BCE value or its gradient."""
        rng = np.random.default_rng(6)
        logits = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        targets = rng.integers(0, 2, size=(5, 3)).astype(float)
        loss = F.binary_cross_entropy_with_logits(logits, targets)
        loss.backward()
        assert logits.grad is not None
        # Stable formulation: matches the direct sigmoid-based gradient.
        probs = 1.0 / (1.0 + np.exp(-logits.data))
        np.testing.assert_allclose(logits.grad, (probs - targets) / logits.data.size,
                                   atol=1e-12)
