"""Tests for the autograd Tensor engine: forward values and gradients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.tensor import Tensor, concatenate, no_grad, stack


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued fn w.r.t. array x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        f_plus = fn()
        x[idx] = orig - eps
        f_minus = fn()
        x[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


class TestTensorBasics:
    def test_construction_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.dtype == np.float64

    def test_construction_casts_dtype(self):
        t = Tensor(np.array([1, 2, 3], dtype=np.int32))
        assert t.dtype == np.float64

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_item_scalar(self):
        assert Tensor([3.5]).item() == pytest.approx(3.5)

    def test_detach_cuts_graph(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = (t * 2).detach()
        assert not d.requires_grad

    def test_copy_is_independent(self):
        t = Tensor([1.0, 2.0])
        c = t.copy()
        c.data[0] = 99.0
        assert t.data[0] == 1.0

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 3)))
        assert len(t) == 4
        assert t.size == 12

    def test_zero_grad(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2).sum().backward()
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None

    def test_backward_requires_scalar(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2).backward()


class TestArithmeticForward:
    def test_add(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_add_scalar(self):
        out = Tensor([1.0, 2.0]) + 1.0
        np.testing.assert_allclose(out.data, [2.0, 3.0])

    def test_radd(self):
        out = 1.0 + Tensor([1.0])
        np.testing.assert_allclose(out.data, [2.0])

    def test_sub(self):
        out = Tensor([3.0]) - Tensor([1.0])
        np.testing.assert_allclose(out.data, [2.0])

    def test_rsub(self):
        out = 5.0 - Tensor([2.0])
        np.testing.assert_allclose(out.data, [3.0])

    def test_mul(self):
        out = Tensor([2.0, 3.0]) * Tensor([4.0, 5.0])
        np.testing.assert_allclose(out.data, [8.0, 15.0])

    def test_div(self):
        out = Tensor([8.0]) / Tensor([2.0])
        np.testing.assert_allclose(out.data, [4.0])

    def test_rdiv(self):
        out = 8.0 / Tensor([2.0])
        np.testing.assert_allclose(out.data, [4.0])

    def test_neg(self):
        np.testing.assert_allclose((-Tensor([1.0, -2.0])).data, [-1.0, 2.0])

    def test_pow(self):
        np.testing.assert_allclose((Tensor([2.0]) ** 3).data, [8.0])

    def test_matmul(self):
        a = Tensor(np.eye(2) * 2)
        b = Tensor([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose((a @ b).data, [[2.0, 4.0], [6.0, 8.0]])

    def test_broadcast_add(self):
        out = Tensor(np.ones((2, 3))) + Tensor(np.ones((3,)))
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out.data, 2.0)


class TestGradients:
    def test_add_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_mul_grad(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([4.0, 5.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [4.0, 5.0])
        np.testing.assert_allclose(b.grad, [2.0, 3.0])

    def test_div_grad(self):
        a = Tensor([6.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.5])
        np.testing.assert_allclose(b.grad, [-1.5])

    def test_pow_grad(self):
        a = Tensor([3.0], requires_grad=True)
        (a ** 2).sum().backward()
        np.testing.assert_allclose(a.grad, [6.0])

    def test_matmul_grad_matches_numerical(self):
        rng = np.random.default_rng(0)
        a_data = rng.normal(size=(3, 4))
        b_data = rng.normal(size=(4, 2))
        a = Tensor(a_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        (a @ b).sum().backward()

        num_a = numerical_grad(lambda: float((a_data @ b_data).sum()), a_data)
        num_b = numerical_grad(lambda: float((a_data @ b_data).sum()), b_data)
        np.testing.assert_allclose(a.grad, num_a, atol=1e-5)
        np.testing.assert_allclose(b.grad, num_b, atol=1e-5)

    def test_broadcast_grad_sums_over_broadcast_dims(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((3,)), requires_grad=True)
        (a * b).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3,)
        np.testing.assert_allclose(b.grad, [2.0, 2.0, 2.0])

    def test_reuse_of_tensor_accumulates(self):
        a = Tensor([2.0], requires_grad=True)
        ((a * a) + a).sum().backward()  # d/da (a^2 + a) = 2a + 1 = 5
        np.testing.assert_allclose(a.grad, [5.0])

    def test_grad_accumulates_across_backward_calls(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        (a * 2).sum().backward()
        np.testing.assert_allclose(a.grad, [4.0])

    def test_exp_log_grad(self):
        a = Tensor([0.5, 1.5], requires_grad=True)
        (a.exp() + a.log()).sum().backward()
        expected = np.exp([0.5, 1.5]) + 1.0 / np.array([0.5, 1.5])
        np.testing.assert_allclose(a.grad, expected)

    def test_relu_grad(self):
        a = Tensor([-1.0, 2.0], requires_grad=True)
        a.relu().sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])

    def test_sigmoid_grad(self):
        a = Tensor([0.0], requires_grad=True)
        a.sigmoid().sum().backward()
        np.testing.assert_allclose(a.grad, [0.25])

    def test_tanh_grad(self):
        a = Tensor([0.0], requires_grad=True)
        a.tanh().sum().backward()
        np.testing.assert_allclose(a.grad, [1.0])

    def test_clip_grad(self):
        a = Tensor([-1.0, 0.5, 2.0], requires_grad=True)
        a.clip(0.0, 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])

    def test_sum_axis_keepdims_grad(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        a.sum(axis=1, keepdims=True).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_mean_grad(self):
        a = Tensor(np.ones((4,)), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, [0.25] * 4)

    def test_max_grad_routes_to_argmax(self):
        a = Tensor([1.0, 5.0, 3.0], requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])

    def test_max_grad_splits_ties(self):
        a = Tensor([2.0, 2.0], requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.5, 0.5])

    def test_reshape_grad(self):
        a = Tensor(np.arange(6, dtype=float), requires_grad=True)
        a.reshape(2, 3).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(6))

    def test_transpose_grad(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        (a.T * Tensor(np.arange(6, dtype=float).reshape(3, 2))).sum().backward()
        assert a.grad.shape == (2, 3)

    def test_getitem_grad(self):
        a = Tensor(np.arange(4, dtype=float), requires_grad=True)
        a[1:3].sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 1.0, 0.0])

    def test_getitem_fancy_index_grad_accumulates(self):
        a = Tensor(np.arange(3, dtype=float), requires_grad=True)
        a[np.array([0, 0, 2])].sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 0.0, 1.0])


class TestGraphControl:
    def test_no_grad_disables_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2
        assert not out.requires_grad
        assert out._backward is None

    def test_no_grad_restores_state(self):
        from repro.nn.tensor import is_grad_enabled

        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_non_requiring_parents_produce_detached_output(self):
        out = Tensor([1.0]) * Tensor([2.0])
        assert not out.requires_grad


class TestConcatenateStack:
    def test_concatenate_forward(self):
        a, b = Tensor([1.0, 2.0]), Tensor([3.0])
        np.testing.assert_allclose(concatenate([a, b]).data, [1.0, 2.0, 3.0])

    def test_concatenate_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        (concatenate([a, b]) * Tensor([1.0, 2.0, 3.0])).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 2.0])
        np.testing.assert_allclose(b.grad, [3.0])

    def test_concatenate_axis1(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        out = concatenate([a, b], axis=1)
        assert out.shape == (2, 5)
        out.sum().backward()
        assert a.grad.shape == (2, 2)
        assert b.grad.shape == (2, 3)

    def test_stack_forward_and_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 2)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])


class TestPropertyBased:
    @given(st.lists(st.floats(-10, 10), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_add_matches_numpy(self, values):
        arr = np.asarray(values, dtype=np.float64)
        np.testing.assert_allclose((Tensor(arr) + Tensor(arr)).data, arr + arr)

    @given(st.lists(st.floats(-5, 5), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_sum_grad_is_ones(self, values):
        arr = np.asarray(values, dtype=np.float64)
        t = Tensor(arr, requires_grad=True)
        t.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones_like(arr))

    @given(st.lists(st.floats(0.1, 5.0), min_size=1, max_size=10),
           st.floats(0.5, 3.0))
    @settings(max_examples=30, deadline=None)
    def test_pow_grad_matches_analytic(self, values, exponent):
        arr = np.asarray(values, dtype=np.float64)
        t = Tensor(arr, requires_grad=True)
        (t ** exponent).sum().backward()
        np.testing.assert_allclose(t.grad, exponent * arr ** (exponent - 1), rtol=1e-9)

    @given(st.integers(1, 5), st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_mul_grad_symmetry(self, rows, cols):
        rng = np.random.default_rng(rows * 10 + cols)
        a_data = rng.normal(size=(rows, cols))
        b_data = rng.normal(size=(rows, cols))
        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, b_data)
        np.testing.assert_allclose(b.grad, a_data)
