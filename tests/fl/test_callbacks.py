"""Tests for the simulation observer/callback API."""

import pytest

from repro.fl.callbacks import (
    CALLBACK_REGISTRY,
    Callback,
    CallbackList,
    EarlyStopping,
    PeriodicEvaluation,
    RoundLogger,
    create_callback,
)
from repro.fl.config import FLConfig
from repro.fl.simulation import FederatedSimulation
from repro.fl.strategies import FedAvg, create_strategy


class Recorder(Callback):
    """Records every hook invocation in order."""

    def __init__(self):
        self.events = []

    def on_run_start(self, sim, history):
        self.events.append("run_start")

    def on_round_start(self, sim, round_index):
        self.events.append(f"round_start:{round_index}")

    def on_round_end(self, sim, record, results):
        self.events.append(f"round_end:{record.round_index}:{len(results)}")

    def on_event(self, sim, info):
        self.events.append(f"event:{info['kind']}")

    def on_evaluate(self, sim, round_index, metrics):
        self.events.append(f"evaluate:{sorted(metrics)}")

    def on_run_end(self, sim, history):
        self.events.append("run_end")


class _Fussy(Recorder):
    """Recorder that raises on the hooks named at construction."""

    def __init__(self, *raise_on):
        super().__init__()
        self.raise_on = set(raise_on)

    def _maybe_raise(self, hook):
        if hook in self.raise_on:
            raise RuntimeError(f"boom in {hook}")

    def on_round_end(self, sim, record, results):
        super().on_round_end(sim, record, results)
        self._maybe_raise("on_round_end")

    def on_run_end(self, sim, history):
        super().on_run_end(sim, history)
        self._maybe_raise("on_run_end")


class TestHookSequence:
    def test_hooks_fire_in_order(self, tiny_bundle, tiny_clients, tiny_fl_config,
                                 tiny_model_fn):
        recorder = Recorder()
        sim = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test,
                                  FedAvg(), tiny_fl_config, callbacks=[recorder])
        sim.run()
        assert recorder.events[0] == "run_start"
        assert recorder.events[1] == "round_start:0"
        assert recorder.events[2].startswith("round_end:0")
        assert recorder.events[-1] == "run_end"
        # The final evaluation fires on_evaluate before on_run_end.
        assert recorder.events[-2].startswith("evaluate:")

    def test_round_results_passed_to_hooks(self, tiny_bundle, tiny_clients,
                                           tiny_fl_config, tiny_model_fn):
        recorder = Recorder()
        sim = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test,
                                  FedAvg(), tiny_fl_config, callbacks=[recorder])
        sim.run()
        round_ends = [e for e in recorder.events if e.startswith("round_end")]
        assert round_ends == [
            f"round_end:{r}:{tiny_fl_config.clients_per_round}"
            for r in range(tiny_fl_config.num_rounds)
        ]

    def test_callback_list_dispatches_to_all(self):
        first, second = Recorder(), Recorder()
        callbacks = CallbackList([first, second])
        callbacks.on_run_start(None, None)
        assert first.events == second.events == ["run_start"]

    def test_full_hook_ordering_with_periodic_eval(self, tiny_bundle, tiny_clients,
                                                   tiny_model_fn):
        """run_start -> (round_start -> round_end)* -> evaluate -> run_end.

        The default PeriodicEvaluation callback sits *before* user callbacks,
        so its eval_every evaluation fires inside each round_end dispatch —
        the recorder sees 'evaluate' just before its own 'round_end'."""
        recorder = Recorder()
        config = FLConfig(num_clients=6, clients_per_round=3, num_rounds=2,
                          batch_size=4, learning_rate=0.1, eval_every=1, seed=0)
        sim = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test,
                                  FedAvg(), config, callbacks=[recorder])
        sim.run()
        kinds = [event.split(":")[0] for event in recorder.events]
        assert kinds == ["run_start",
                         "round_start", "evaluate", "round_end",
                         "round_start", "evaluate", "round_end",
                         "evaluate", "run_end"]

    def test_async_event_hooks_fire_between_run_start_and_end(
            self, tiny_bundle, tiny_clients, tiny_model_fn):
        from repro.fl.async_sim import AsyncFederatedSimulation
        from repro.fl.strategies import create_strategy as _create

        recorder = Recorder()
        config = FLConfig(num_clients=6, clients_per_round=3, num_rounds=2,
                          batch_size=4, learning_rate=0.1, seed=0)
        sim = AsyncFederatedSimulation(
            tiny_model_fn, tiny_clients, tiny_bundle.test, _create("fedasync"),
            config, callbacks=[recorder])
        sim.run()
        assert recorder.events[0] == "run_start"
        assert recorder.events[-1] == "run_end"
        kinds = {e.split(":", 1)[1] for e in recorder.events
                 if e.startswith("event:")}
        assert {"dispatch", "completion", "commit"} <= kinds
        # Every dispatch strictly precedes its run_end; events only occur
        # inside the run_start/run_end envelope.
        assert all(e.startswith(("event:", "round", "evaluate"))
                   for e in recorder.events[1:-1])


class TestCallbackExceptionIsolation:
    def test_later_callbacks_still_run_when_one_raises(self):
        fussy, after = _Fussy("on_round_end"), Recorder()

        class _FakeRecord:
            round_index = 0

        callbacks = CallbackList([fussy, after])
        with pytest.raises(RuntimeError, match="boom in on_round_end"):
            callbacks.on_round_end(None, _FakeRecord(), [])
        # The callback after the raising one still saw the hook.
        assert after.events == ["round_end:0:0"]

    def test_first_of_several_exceptions_propagates(self):
        first, second = _Fussy("on_run_end"), _Fussy("on_run_end")
        first.raise_on = {"on_run_end"}
        with pytest.raises(RuntimeError, match="boom"):
            CallbackList([first, second]).on_run_end(None, None)
        assert first.events == second.events == ["run_end"]

    def test_telemetry_keeps_counting_past_a_raising_callback(
            self, tiny_bundle, tiny_clients, tiny_fl_config, tiny_model_fn):
        """The motivating bug: a raising callback must not silence
        SwitchTelemetry (registered before user callbacks would be unaffected,
        so place the raiser first in the user list and count via a recorder)."""
        fussy = _Fussy("on_round_end")
        after = Recorder()
        sim = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test,
                                  FedAvg(), tiny_fl_config,
                                  callbacks=[fussy, after])
        with pytest.raises(RuntimeError, match="boom in on_round_end"):
            sim.run()
        # The raising callback fired round 0's hook; so did the one after it.
        assert "round_end:0:3" in fussy.events
        assert "round_end:0:3" in after.events


class TestSwitchTelemetry:
    def test_switch_counts_recorded_per_round_and_in_total(self, tiny_bundle,
                                                           tiny_clients,
                                                           tiny_fl_config,
                                                           tiny_model_fn):
        sim = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test,
                                  create_strategy("isp_swad"), tiny_fl_config)
        history = sim.run()
        per_round = sum(record.num_switch1 for record in history.rounds)
        assert per_round == history.metadata["total_switch1"]
        assert per_round == sum(len(r.selected_clients) for r in history.rounds)

    def test_direct_run_round_still_counts_switches(self, tiny_bundle, tiny_clients,
                                                    tiny_fl_config, tiny_model_fn):
        sim = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test,
                                  create_strategy("isp_swad"), tiny_fl_config)
        record = sim.run_round(0)
        assert record.num_switch1 == len(record.selected_clients)


class TestPeriodicEvaluation:
    def test_eval_every_still_populates_history(self, tiny_bundle, tiny_clients,
                                                tiny_model_fn):
        config = FLConfig(num_clients=6, clients_per_round=3, num_rounds=4,
                          batch_size=4, learning_rate=0.1, eval_every=2, seed=0)
        sim = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test,
                                  FedAvg(), config)
        history = sim.run()
        assert len(history.evaluations) == 2
        assert all(set(e) == set(tiny_bundle.test) for e in history.evaluations)

    def test_standalone_run_round_does_not_touch_finished_history(self, tiny_bundle,
                                                                  tiny_clients,
                                                                  tiny_model_fn):
        config = FLConfig(num_clients=6, clients_per_round=3, num_rounds=2,
                          batch_size=4, learning_rate=0.1, eval_every=1, seed=0)
        sim = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test,
                                  FedAvg(), config)
        history = sim.run()
        evaluations_before = list(history.evaluations)
        sim.run_round(0)  # replaying a round must not append to the old run
        assert history.evaluations == evaluations_before

    def test_rejects_non_positive_period(self):
        with pytest.raises(ValueError):
            PeriodicEvaluation(0)


class TestEarlyStopping:
    def test_stops_when_loss_plateaus(self, tiny_bundle, tiny_clients, tiny_model_fn):
        config = FLConfig(num_clients=6, clients_per_round=3, num_rounds=8,
                          batch_size=4, learning_rate=0.02, seed=0)
        # min_delta so large that no round ever counts as an improvement.
        stopper = EarlyStopping(monitor="mean_train_loss", patience=2, min_delta=100.0)
        sim = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test,
                                  FedAvg(), config, callbacks=[stopper])
        history = sim.run()
        # Round 0 establishes the baseline; rounds 1-2 are the two stale rounds.
        assert len(history.rounds) == 3
        assert history.metadata["early_stopped_at"] == 2
        # The final evaluation still happens after a graceful stop.
        assert set(history.per_device_metric) == set(tiny_bundle.test)

    def test_does_not_stop_while_improving(self, tiny_bundle, tiny_clients,
                                           tiny_fl_config, tiny_model_fn):
        stopper = EarlyStopping(monitor="mean_train_loss", patience=50)
        sim = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test,
                                  FedAvg(), tiny_fl_config, callbacks=[stopper])
        history = sim.run()
        assert len(history.rounds) == tiny_fl_config.num_rounds
        assert "early_stopped_at" not in history.metadata

    def test_state_resets_between_runs(self, tiny_bundle, tiny_clients, tiny_model_fn):
        config = FLConfig(num_clients=6, clients_per_round=3, num_rounds=8,
                          batch_size=4, learning_rate=0.02, seed=0)
        stopper = EarlyStopping(monitor="mean_train_loss", patience=2, min_delta=100.0)
        sim = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test,
                                  FedAvg(), config, callbacks=[stopper])
        first = sim.run()
        second = sim.run()
        # Patience is per run: the second run gets a fresh baseline + 2 stale
        # rounds, not a carried-over exhausted counter.
        assert len(first.rounds) == len(second.rounds) == 3

    def test_invalid_arguments(self):
        with pytest.raises(ValueError, match="monitor"):
            EarlyStopping(monitor="accuracy")
        with pytest.raises(ValueError, match="patience"):
            EarlyStopping(patience=0)


class TestRoundLogger:
    def test_logs_every_round(self, capsys, tiny_bundle, tiny_clients, tiny_fl_config,
                              tiny_model_fn):
        sim = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test,
                                  FedAvg(), tiny_fl_config, callbacks=[RoundLogger()])
        sim.run()
        out = capsys.readouterr().out
        assert out.count("[round") == tiny_fl_config.num_rounds

    def test_rejects_non_positive_period(self):
        with pytest.raises(ValueError):
            RoundLogger(0)


class TestCallbackRegistry:
    def test_create_by_name(self):
        callback = create_callback("early_stopping", patience=3)
        assert isinstance(callback, EarlyStopping)
        assert callback.patience == 3

    def test_unknown_callback_lists_available(self):
        with pytest.raises(KeyError, match="unknown callback.*early_stopping"):
            CALLBACK_REGISTRY["nope"]
