"""Unit tests for the deterministic simulated-clock event queue."""

import pytest

from repro.fl.async_sim.events import EVENT_KINDS, EventQueue, SimEvent, event_rng


class TestEventRng:
    def test_pure_function_of_identity(self):
        a = event_rng(0, "latency", 3, 7).random(4)
        b = event_rng(0, "latency", 3, 7).random(4)
        assert (a == b).all()

    def test_streams_are_disjoint(self):
        draws = {
            stream: tuple(event_rng(0, stream, 1).random(3))
            for stream in ("latency", "availability", "init", "dispatch", "tiebreak")
        }
        assert len(set(draws.values())) == len(draws)

    def test_unknown_stream_raises(self):
        with pytest.raises(KeyError):
            event_rng(0, "wallclock", 0)


class TestSimEvent:
    def test_kinds(self):
        assert set(EVENT_KINDS) == {"completion", "toggle"}

    def test_validation(self):
        with pytest.raises(ValueError):
            SimEvent(time=1.0, kind="dispatch", client_id=0)
        with pytest.raises(ValueError):
            SimEvent(time=-0.5, kind="toggle", client_id=0)

    def test_dict_round_trip(self):
        event = SimEvent(time=3.25, kind="completion", client_id=4, job_id=9,
                         tiebreak=0.125)
        assert SimEvent.from_dict(event.to_dict()) == event
        untagged = SimEvent(time=1.0, kind="toggle", client_id=2)
        assert SimEvent.from_dict(untagged.to_dict()).tiebreak is None


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue(seed=0)
        for t in (5.0, 1.0, 3.0):
            queue.push(SimEvent(time=t, kind="toggle", client_id=0))
        assert [queue.pop().time for _ in range(3)] == [1.0, 3.0, 5.0]

    def test_len_bool_peek(self):
        queue = EventQueue(seed=0)
        assert not queue and len(queue) == 0
        queue.push(SimEvent(time=2.0, kind="toggle", client_id=1))
        assert queue and len(queue) == 1
        assert queue.peek().client_id == 1
        assert len(queue) == 1  # peek does not consume

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue(seed=0).pop()
        with pytest.raises(IndexError):
            EventQueue(seed=0).peek()

    def test_ties_broken_by_seeded_tiebreak(self):
        # Same timestamp, pushed in client order: the pop order must follow
        # the seeded tiebreak draws, not structurally favour insertion order
        # for every seed.
        def tie_order(seed):
            queue = EventQueue(seed=seed)
            for cid in range(6):
                queue.push(SimEvent(time=10.0, kind="toggle", client_id=cid))
            return tuple(queue.pop().client_id for _ in range(6))

        orders = {tie_order(seed) for seed in range(8)}
        assert len(orders) > 1                       # seed changes the order
        assert tuple(range(6)) not in orders or len(orders) > 1
        assert tie_order(3) == tie_order(3)          # but each seed is stable

    def test_explicit_tiebreak_preserved(self):
        queue = EventQueue(seed=0)
        first = queue.push(SimEvent(time=1.0, kind="toggle", client_id=0,
                                    tiebreak=0.9))
        assert first.tiebreak == 0.9

    def test_identical_seeds_pop_identically(self):
        def run(seed):
            queue = EventQueue(seed=seed)
            for i, t in enumerate([4.0, 4.0, 2.0, 4.0, 1.0]):
                queue.push(SimEvent(time=t, kind="completion", client_id=i,
                                    job_id=i))
            return [(queue.pop().time, queue.pop().client_id) for _ in range(2)]

        assert run(11) == run(11)

    def test_state_dict_round_trip_preserves_order(self):
        queue = EventQueue(seed=5)
        for i, t in enumerate([7.0, 7.0, 7.0, 2.5, 9.0]):
            queue.push(SimEvent(time=t, kind="toggle", client_id=i))
        queue.pop()  # consume one so counters are mid-stream

        restored = EventQueue.from_state_dict(queue.state_dict())
        expected = [queue.pop() for _ in range(len(queue))]
        actual = [restored.pop() for _ in range(len(restored))]
        assert actual == expected

    def test_state_dict_round_trip_preserves_counters(self):
        queue = EventQueue(seed=5)
        for t in (1.0, 1.0):
            queue.push(SimEvent(time=t, kind="toggle", client_id=0))
        restored = EventQueue.from_state_dict(queue.state_dict())
        # Pushing the *next* event must draw the same tiebreak in both.
        a = queue.push(SimEvent(time=1.0, kind="toggle", client_id=1))
        b = restored.push(SimEvent(time=1.0, kind="toggle", client_id=1))
        assert a.tiebreak == b.tiebreak
