"""Tests for FLConfig validation and the shared local-training loop."""

import numpy as np
import pytest

from repro.data.dataset import ArrayDataset
from repro.fl.config import FLConfig
from repro.fl.training import ClientResult, compute_loss, evaluate_loss, evaluate_metric, local_train
from repro.nn.models import SimpleMLP
from repro.nn.serialization import get_weights, state_dict_to_vector


class TestFLConfig:
    def test_defaults_match_paper(self):
        config = FLConfig()
        assert config.batch_size == 10
        assert config.local_epochs == 1
        assert config.learning_rate == 0.1
        assert config.clients_per_round == 20
        assert config.num_clients == 100
        assert config.ema_alpha == 0.9

    @pytest.mark.parametrize("kwargs", [
        {"num_clients": 0},
        {"clients_per_round": 0},
        {"clients_per_round": 101},
        {"num_rounds": 0},
        {"local_epochs": 0},
        {"batch_size": 0},
        {"learning_rate": 0.0},
        {"task": "segmentation"},
        {"ema_alpha": 0.0},
        {"ema_alpha": 1.5},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FLConfig(**kwargs)

    def test_frozen(self):
        config = FLConfig()
        with pytest.raises(Exception):
            config.batch_size = 5


@pytest.fixture
def classification_setup():
    rng = np.random.default_rng(0)
    features = rng.normal(size=(20, 6))
    labels = (features[:, 0] > 0).astype(int)
    dataset = ArrayDataset(features, labels)
    model = SimpleMLP(6, 2, hidden=8, seed=0)
    config = FLConfig(num_clients=4, clients_per_round=2, num_rounds=1,
                      batch_size=5, learning_rate=0.2, local_epochs=2, seed=0)
    return model, dataset, config


class TestComputeAndEvaluate:
    def test_compute_loss_classification(self, classification_setup):
        model, dataset, config = classification_setup
        loss = compute_loss(model, dataset.features, dataset.labels, "classification")
        assert float(loss.data) > 0

    def test_compute_loss_unknown_task(self, classification_setup):
        model, dataset, _ = classification_setup
        with pytest.raises(ValueError):
            compute_loss(model, dataset.features, dataset.labels, "ranking")

    def test_evaluate_loss_no_grad_side_effects(self, classification_setup):
        model, dataset, _ = classification_setup
        evaluate_loss(model, dataset, "classification")
        assert all(p.grad is None for p in model.parameters())

    def test_evaluate_metric_range(self, classification_setup):
        model, dataset, _ = classification_setup
        metric = evaluate_metric(model, dataset, "classification")
        assert 0.0 <= metric <= 1.0

    def test_evaluate_metric_multilabel(self):
        model = SimpleMLP(4, 3, hidden=8, seed=0)
        dataset = ArrayDataset(np.random.default_rng(0).normal(size=(10, 4)),
                               (np.random.default_rng(1).random((10, 3)) > 0.5).astype(float))
        metric = evaluate_metric(model, dataset, "multilabel")
        assert 0.0 <= metric <= 1.0

    def test_evaluate_metric_regression(self):
        model = SimpleMLP(4, 1, hidden=8, seed=0)
        dataset = ArrayDataset(np.random.default_rng(0).normal(size=(10, 4)),
                               np.random.default_rng(1).random((10, 1)))
        metric = evaluate_metric(model, dataset, "regression")
        assert metric <= 1.0


class TestLocalTrain:
    def test_returns_client_result(self, classification_setup):
        model, dataset, config = classification_setup
        global_state = get_weights(model)
        result = local_train(model, dataset, config, global_state, seed=0)
        assert isinstance(result, ClientResult)
        assert result.num_samples == len(dataset)
        assert result.train_loss > 0
        assert result.init_loss > 0

    def test_training_changes_weights(self, classification_setup):
        model, dataset, config = classification_setup
        global_state = get_weights(model)
        result = local_train(model, dataset, config, global_state, seed=0)
        assert not np.allclose(state_dict_to_vector(result.state),
                               state_dict_to_vector(global_state))

    def test_training_reduces_loss(self, classification_setup):
        model, dataset, _ = classification_setup
        config = FLConfig(num_clients=4, clients_per_round=2, num_rounds=1,
                          batch_size=5, learning_rate=0.3, local_epochs=10, seed=0)
        global_state = get_weights(model)
        result = local_train(model, dataset, config, global_state, seed=0)
        final_loss = evaluate_loss(model, dataset, "classification")
        assert final_loss < result.init_loss

    def test_starts_from_global_state(self, classification_setup):
        """local_train must overwrite whatever weights the model currently holds."""
        model, dataset, config = classification_setup
        global_state = get_weights(model)
        # Scramble the model weights.
        for p in model.parameters():
            p.data += 10.0
        result = local_train(model, dataset, config, global_state, seed=0)
        # init_loss is computed on the restored global weights, so it should be
        # a sane cross-entropy value, not the loss of the scrambled model.
        assert result.init_loss < 20.0

    def test_transform_hook_called(self, classification_setup):
        model, dataset, config = classification_setup
        calls = {"count": 0}

        def transform(features, labels):
            calls["count"] += 1
            return features

        local_train(model, dataset, config, get_weights(model), transform=transform, seed=0)
        assert calls["count"] > 0

    def test_batch_hook_called_once_per_batch(self, classification_setup):
        model, dataset, config = classification_setup
        seen = []

        def hook(hook_model, batch_index, epoch_index):
            seen.append((epoch_index, batch_index))

        local_train(model, dataset, config, get_weights(model), batch_hook=hook, seed=0)
        batches_per_epoch = int(np.ceil(len(dataset) / config.batch_size))
        assert len(seen) == batches_per_epoch * config.local_epochs

    def test_deterministic_given_seed(self, classification_setup):
        model, dataset, config = classification_setup
        global_state = get_weights(model)
        a = local_train(model, dataset, config, global_state, seed=7)
        b = local_train(model, dataset, config, global_state, seed=7)
        np.testing.assert_allclose(state_dict_to_vector(a.state), state_dict_to_vector(b.state))

    def test_different_seeds_differ(self, classification_setup):
        model, dataset, config = classification_setup
        global_state = get_weights(model)
        a = local_train(model, dataset, config, global_state, seed=1)
        b = local_train(model, dataset, config, global_state, seed=2)
        assert not np.allclose(state_dict_to_vector(a.state), state_dict_to_vector(b.state))
