"""Tests for FL evaluation metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fl.metrics import (
    accuracy,
    accuracy_variance,
    average_precision,
    heart_rate_deviation,
    mean_average_precision,
    mean_value,
    model_quality_degradation,
    summarize_per_device,
    worst_case,
)


class TestAccuracy:
    def test_perfect(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert accuracy(logits, np.array([0, 1])) == 1.0

    def test_all_wrong(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert accuracy(logits, np.array([1, 0])) == 0.0

    def test_partial(self):
        logits = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0], [0.0, 1.0]])
        assert accuracy(logits, np.array([0, 1, 1, 0])) == 0.5

    def test_rejects_1d_logits(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros(3), np.zeros(3))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros((0, 2)), np.zeros(0))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros((2, 3)), np.zeros(3))


class TestDegradation:
    def test_no_degradation(self):
        assert model_quality_degradation(0.8, 0.8) == 0.0

    def test_half_degradation(self):
        assert model_quality_degradation(0.8, 0.4) == pytest.approx(0.5)

    def test_improvement_negative(self):
        assert model_quality_degradation(0.5, 0.6) < 0.0

    def test_zero_reference(self):
        assert model_quality_degradation(0.0, 0.5) == 0.0


class TestAveragePrecision:
    def test_perfect_ranking(self):
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        targets = np.array([1.0, 1.0, 0.0, 0.0])
        assert average_precision(scores, targets) == 1.0

    def test_worst_ranking(self):
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        targets = np.array([0.0, 0.0, 1.0, 1.0])
        assert average_precision(scores, targets) < 0.6

    def test_no_positives_returns_zero(self):
        assert average_precision(np.array([0.5, 0.4]), np.array([0.0, 0.0])) == 0.0

    def test_known_value(self):
        # One positive ranked second: AP = 1/2.
        scores = np.array([0.9, 0.8])
        targets = np.array([0.0, 1.0])
        assert average_precision(scores, targets) == pytest.approx(0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            average_precision(np.zeros(3), np.zeros(4))

    @given(st.integers(2, 30))
    @settings(max_examples=20, deadline=None)
    def test_bounds(self, n):
        rng = np.random.default_rng(n)
        scores = rng.random(n)
        targets = (rng.random(n) > 0.5).astype(float)
        ap = average_precision(scores, targets)
        assert 0.0 <= ap <= 1.0


class TestMeanAveragePrecision:
    def test_macro_average(self):
        scores = np.array([[0.9, 0.1], [0.1, 0.9]])
        targets = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert mean_average_precision(scores, targets) == 1.0

    def test_skips_labels_without_positives(self):
        scores = np.array([[0.9, 0.5], [0.2, 0.5]])
        targets = np.array([[1.0, 0.0], [0.0, 0.0]])
        assert mean_average_precision(scores, targets) == average_precision(
            scores[:, 0], targets[:, 0]
        )

    def test_all_empty_returns_zero(self):
        assert mean_average_precision(np.zeros((3, 2)), np.zeros((3, 2))) == 0.0

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            mean_average_precision(np.zeros(3), np.zeros(3))


class TestPerDeviceSummaries:
    def test_variance_in_percent_units(self):
        per_device = {"a": 0.60, "b": 0.70}
        # 60 and 70 percent -> variance 25.
        assert accuracy_variance(per_device) == pytest.approx(25.0)

    def test_variance_of_identical_values_zero(self):
        assert accuracy_variance({"a": 0.5, "b": 0.5}) == 0.0

    def test_variance_accepts_percent_inputs(self):
        assert accuracy_variance({"a": 60.0, "b": 70.0}) == pytest.approx(25.0)

    def test_worst_case(self):
        assert worst_case({"a": 0.3, "b": 0.7}) == pytest.approx(0.3)

    def test_mean_value(self):
        assert mean_value({"a": 0.4, "b": 0.6}) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            worst_case({})
        with pytest.raises(ValueError):
            mean_value({})
        with pytest.raises(ValueError):
            accuracy_variance({})

    def test_summarize_bundle(self):
        summary = summarize_per_device({"a": 0.5, "b": 0.7})
        assert set(summary) == {"worst_case", "variance", "average"}
        assert summary["worst_case"] == pytest.approx(0.5)
        assert summary["average"] == pytest.approx(0.6)

    @given(st.dictionaries(st.text(min_size=1, max_size=4), st.floats(0.0, 1.0),
                           min_size=1, max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_property_worst_le_mean(self, per_device):
        assert worst_case(per_device) <= mean_value(per_device) + 1e-12


class TestHeartRateDeviation:
    def test_zero_for_perfect_predictions(self):
        targets = np.array([0.5, 0.8])
        assert heart_rate_deviation(targets, targets) == 0.0

    def test_known_value(self):
        assert heart_rate_deviation(np.array([0.6]), np.array([0.5])) == pytest.approx(0.2)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            heart_rate_deviation(np.zeros(2), np.zeros(3))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            heart_rate_deviation(np.zeros(0), np.zeros(0))
