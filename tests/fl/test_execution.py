"""Cross-backend determinism tests for the client-execution engine.

The guarantees under test (see :mod:`repro.fl.execution`):

* a short FL run produces **bit-identical** history metrics and final global
  weights on the serial, thread, and process backends, for any worker count;
* every registered strategy's aggregation is **permutation-invariant**: the
  order client results arrive in cannot change the aggregated state;
* client randomness derives from ``(seed, round, client_id)`` — the exact
  stream the pre-executor serial loop used — never from a shared generator.
"""

import copy
import multiprocessing

import numpy as np
import pytest

from repro.core.ema import EMALossTracker
from repro.fl.callbacks import Callback
from repro.fl.config import FLConfig
from repro.fl.execution import (
    EXECUTOR_REGISTRY,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    client_rng,
    create_executor,
    derive_client_seed,
    run_client,
)
from repro.fl.simulation import FederatedSimulation
from repro.fl.strategies import FLContext, canonical_results, create_strategy
from repro.fl.training import local_train
from repro.nn.serialization import get_weights, states_equal

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

PARALLEL_BACKENDS = [
    pytest.param("thread", id="thread"),
    pytest.param("process", id="process",
                 marks=pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")),
]

AGGREGATING_STRATEGIES = ["fedavg", "fedprox", "qfedavg", "scaffold"]
ALL_STRATEGIES = AGGREGATING_STRATEGIES + ["heteroswitch"]


def run_simulation(strategy_name, bundle, clients, config, model_fn,
                   executor="serial", max_workers=None, callbacks=()):
    """One tiny FL run; returns (history, final global weights)."""
    backend = create_executor(executor, max_workers=max_workers)
    with backend:
        sim = FederatedSimulation(model_fn, clients, bundle.test,
                                  create_strategy(strategy_name), config,
                                  callbacks=list(callbacks), executor=backend)
        history = sim.run()
    return history, sim.global_state


def assert_bit_identical(reference, candidate):
    """Histories and final weights match exactly (floats compared with ==)."""
    ref_history, ref_state = reference
    cand_history, cand_state = candidate
    assert [r.selected_clients for r in cand_history.rounds] == \
        [r.selected_clients for r in ref_history.rounds]
    assert [r.mean_train_loss for r in cand_history.rounds] == \
        [r.mean_train_loss for r in ref_history.rounds]
    assert [r.ema_loss for r in cand_history.rounds] == \
        [r.ema_loss for r in ref_history.rounds]
    assert cand_history.per_device_metric == ref_history.per_device_metric
    assert states_equal(ref_state, cand_state)


# Serial baselines are deterministic; compute each experiment's once per module.
_SERIAL_BASELINE = {}


def serial_baseline(strategy_name, bundle, clients, config, model_fn):
    # Key on the full experiment identity (fixtures are session/function-scoped
    # but deterministic; the frozen config hashes) so a future caller with a
    # different setup cannot be handed another experiment's baseline.
    key = (strategy_name, config, id(bundle), len(clients))
    if key not in _SERIAL_BASELINE:
        _SERIAL_BASELINE[key] = run_simulation(
            strategy_name, bundle, clients, config, model_fn)
    return _SERIAL_BASELINE[key]


class TestCrossBackendEquivalence:
    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    @pytest.mark.parametrize("strategy_name", ALL_STRATEGIES)
    def test_backend_matches_serial(self, strategy_name, backend, tiny_bundle,
                                    tiny_clients, tiny_fl_config, tiny_model_fn):
        reference = serial_baseline(strategy_name, tiny_bundle, tiny_clients,
                                    tiny_fl_config, tiny_model_fn)
        candidate = run_simulation(strategy_name, tiny_bundle, tiny_clients,
                                   tiny_fl_config, tiny_model_fn, executor=backend)
        assert_bit_identical(reference, candidate)

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_count_irrelevant(self, backend, workers, tiny_bundle,
                                     tiny_clients, tiny_fl_config, tiny_model_fn):
        reference = serial_baseline("fedavg", tiny_bundle, tiny_clients,
                                    tiny_fl_config, tiny_model_fn)
        candidate = run_simulation("fedavg", tiny_bundle, tiny_clients,
                                   tiny_fl_config, tiny_model_fn,
                                   executor=backend, max_workers=workers)
        assert_bit_identical(reference, candidate)

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_executor_reusable_after_close(self, backend, tiny_bundle, tiny_clients,
                                           tiny_fl_config, tiny_model_fn):
        """close() releases pools but the executor lazily re-creates them."""
        executor = create_executor(backend, max_workers=2)
        first = run_simulation("fedavg", tiny_bundle, tiny_clients,
                               tiny_fl_config, tiny_model_fn)
        sim = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test,
                                  create_strategy("fedavg"), tiny_fl_config,
                                  executor=executor)
        history_a = sim.run()
        executor.close()
        sim_b = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test,
                                    create_strategy("fedavg"), tiny_fl_config,
                                    executor=executor)
        history_b = sim_b.run()
        executor.close()
        assert_bit_identical(first, (history_a, sim.global_state))
        assert_bit_identical(first, (history_b, sim_b.global_state))


class TestExecutorRegistry:
    def test_backends_registered(self):
        assert {"serial", "thread", "process", "shm"} <= set(EXECUTOR_REGISTRY)

    def test_create_executor_types(self):
        assert isinstance(create_executor("serial"), SerialExecutor)
        assert isinstance(create_executor("thread", max_workers=2), ThreadExecutor)
        assert isinstance(create_executor("process"), ProcessExecutor)

    def test_unknown_backend_lists_available(self):
        with pytest.raises(KeyError, match="serial"):
            create_executor("gpu")

    @pytest.mark.parametrize("bad", [0, -1, 1.5, "four"])
    def test_invalid_max_workers_rejected(self, bad):
        with pytest.raises(ValueError):
            create_executor("thread", max_workers=bad)


def make_round_results(strategy_name, num_clients=3, seed=0):
    """Real client updates for one synthetic round, plus the server context."""
    from repro.data.dataset import ArrayDataset
    from repro.data.partition import ClientSpec
    from repro.nn.models import SimpleMLP

    config = FLConfig(num_clients=num_clients, clients_per_round=num_clients,
                      num_rounds=1, batch_size=4, learning_rate=0.1, seed=seed)
    context = FLContext(config=config, ema=EMALossTracker())
    context.ema.update(1.0)
    # NCHW image batches so HeteroSwitch's ISP transform applies unchanged.
    model = SimpleMLP(3 * 4 * 4, 2, hidden=8, seed=0)
    global_state = get_weights(model)
    strategy = create_strategy(strategy_name)
    rng = np.random.default_rng(seed)

    results = []
    for client_id in range(num_clients):
        features = np.clip(rng.random((8, 3, 4, 4)), 0, 1)
        labels = (features.reshape(8, -1)[:, 0] > 0.5).astype(int)
        spec = ClientSpec(client_id=client_id, device="S6",
                          dataset=ArrayDataset(features, labels))
        results.append(run_client(strategy, model, spec, global_state, context))
    context.round_selection = [2, 0, 1][:num_clients]  # arbitrary but fixed order
    return strategy, global_state, results, context


class TestPermutationInvariance:
    @pytest.mark.parametrize("strategy_name", AGGREGATING_STRATEGIES)
    def test_aggregate_is_permutation_invariant(self, strategy_name):
        strategy, global_state, results, context = make_round_results(strategy_name)
        baseline = strategy.aggregate(global_state, list(results),
                                      copy.deepcopy(context))
        for permutation_seed in range(3):
            shuffled = list(results)
            np.random.default_rng(permutation_seed).shuffle(shuffled)
            aggregated = strategy.aggregate(global_state, shuffled,
                                            copy.deepcopy(context))
            assert states_equal(baseline, aggregated)

    @pytest.mark.parametrize("strategy_name", AGGREGATING_STRATEGIES)
    def test_on_round_end_is_permutation_invariant(self, strategy_name):
        strategy, _, results, context = make_round_results(strategy_name)
        ctx_a, ctx_b = copy.deepcopy(context), copy.deepcopy(context)
        shuffled = list(results)
        np.random.default_rng(7).shuffle(shuffled)
        strategy.on_round_end(ctx_a, copy.deepcopy(results))
        strategy.on_round_end(ctx_b, copy.deepcopy(shuffled))
        assert ctx_a.ema.value == ctx_b.ema.value

    def test_canonical_order_without_selection_sorts_by_client_id(self):
        strategy, _, results, context = make_round_results("fedavg")
        context.round_selection = []
        ordered = canonical_results(list(reversed(results)), context)
        assert [r.client_id for r in ordered] == sorted(r.client_id for r in results)

    def test_canonical_order_follows_round_selection(self):
        strategy, _, results, context = make_round_results("fedavg")
        ordered = canonical_results(list(reversed(results)), context)
        assert [r.client_id for r in ordered] == context.round_selection


class _FailFastStrategy:
    """FedAvg whose designated client raises; the rest sleep then record."""

    def __init__(self, fail_client, delay=0.05):
        self._inner = create_strategy("fedavg")
        self.fail_client = fail_client
        self.delay = delay
        self.trained = []

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def client_update(self, model, spec, global_state, context):
        import time

        if spec.client_id == self.fail_client:
            raise RuntimeError("boom: synthetic client failure")
        time.sleep(self.delay)
        self.trained.append(spec.client_id)
        return self._inner.client_update(model, spec, global_state, context)


class TestRoundFailFast:
    """A failing client must abort the round instead of training the rest."""

    def _make_round(self, num_clients=8):
        from repro.data.dataset import ArrayDataset
        from repro.data.partition import ClientSpec
        from repro.nn.models import SimpleMLP

        rng = np.random.default_rng(0)
        specs = []
        for client_id in range(num_clients):
            features = np.clip(rng.random((4, 3, 4, 4)), 0, 1)
            labels = (features.reshape(4, -1)[:, 0] > 0.5).astype(int)
            specs.append(ClientSpec(client_id=client_id, device="S6",
                                    dataset=ArrayDataset(features, labels)))
        config = FLConfig(num_clients=num_clients, clients_per_round=num_clients,
                          num_rounds=1, batch_size=4, learning_rate=0.05, seed=0)
        context = FLContext(config=config, ema=EMALossTracker())
        context.round_selection = [spec.client_id for spec in specs]

        def model_fn():
            return SimpleMLP(3 * 4 * 4, 2, hidden=8, seed=0)

        return specs, model_fn, context

    def test_thread_cancels_pending_on_failure(self):
        """With one worker and the first client failing, the cancellation must
        keep (nearly) all later clients from ever starting — before the fix,
        every one of them trained to completion and was then discarded."""
        specs, model_fn, context = self._make_round()
        strategy = _FailFastStrategy(fail_client=specs[0].client_id)
        global_state = get_weights(model_fn())
        with create_executor("thread", max_workers=1) as executor:
            with pytest.raises(RuntimeError, match="boom"):
                executor.run_round(strategy, model_fn, specs, global_state, context)
            # At most the one job the worker raced into before cancel landed.
            assert len(strategy.trained) <= 1
            # The pool drained cleanly and stays usable.
            results = executor.run_round(create_strategy("fedavg"), model_fn,
                                         specs, global_state, context)
            assert [r.client_id for r in results] == [s.client_id for s in specs]

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_failure_propagates_and_pool_reusable(self, backend):
        specs, model_fn, context = self._make_round(num_clients=4)
        strategy = _FailFastStrategy(fail_client=specs[1].client_id, delay=0.0)
        global_state = get_weights(model_fn())
        with create_executor(backend, max_workers=2) as executor:
            with pytest.raises(RuntimeError, match="boom"):
                executor.run_round(strategy, model_fn, specs, global_state, context)
            results = executor.run_round(create_strategy("fedavg"), model_fn,
                                         specs, global_state, context)
            assert [r.client_id for r in results] == [s.client_id for s in specs]


class _EntropyConsumer(Callback):
    """Simulates a rogue co-tenant drawing randomness between client updates."""

    def on_round_start(self, sim, round_index):
        np.random.rand(5)
        sim.context.client_rng(0).normal(size=3)
        client_rng(sim.config.seed, round_index, 99).random(4)


class TestDerivedClientStreams:
    def test_seed_formula_frozen(self):
        """Regression: the stream derivation is the pre-refactor inline formula.

        These constants pin every historical benchmark number; a serial run's
        metrics are unchanged by the executor refactor because each client
        still trains with exactly this seed.
        """
        for seed, round_index, client_id in [(0, 0, 0), (3, 7, 11), (2, 19, 5)]:
            assert derive_client_seed(seed, round_index, client_id) == \
                seed * 100_003 + round_index * 1_009 + client_id

    def test_context_has_no_shared_rng(self):
        config = FLConfig(num_clients=2, clients_per_round=1, num_rounds=1)
        context = FLContext(config=config, ema=EMALossTracker())
        assert not hasattr(context, "rng")

    def test_client_rng_is_fresh_per_call(self):
        config = FLConfig(num_clients=2, clients_per_round=1, num_rounds=1, seed=5)
        context = FLContext(config=config, ema=EMALossTracker(), round_index=3)
        first = context.client_rng(1).random(4)
        second = context.client_rng(1).random(4)
        np.testing.assert_array_equal(first, second)

    def test_metrics_immune_to_external_rng_consumption(self, tiny_bundle, tiny_clients,
                                                        tiny_fl_config, tiny_model_fn):
        """Serial-run regression: results cannot depend on shared RNG traffic."""
        clean = run_simulation("heteroswitch", tiny_bundle, tiny_clients,
                               tiny_fl_config, tiny_model_fn)
        noisy = run_simulation("heteroswitch", tiny_bundle, tiny_clients,
                               tiny_fl_config, tiny_model_fn,
                               callbacks=[_EntropyConsumer()])
        assert_bit_identical(clean, noisy)

    def test_executor_reproduces_legacy_client_computation(self, tiny_bundle, tiny_clients,
                                                           tiny_fl_config, tiny_model_fn):
        """Serial-run regression: the executor path yields bit for bit the
        legacy per-client computation — plain ``local_train`` seeded with the
        historical ``(seed, round, client_id)`` formula."""
        sim = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test,
                                  create_strategy("fedavg"), tiny_fl_config)
        global_before = sim.global_state
        sim.context.round_index = 0
        selected = sim.select_clients(0)
        sim.context.round_selection = [spec.client_id for spec in selected]
        results = sim.executor.run_round(sim.strategy, tiny_model_fn, selected,
                                         global_before, sim.context)
        for spec, result in zip(selected, results):
            seed = derive_client_seed(tiny_fl_config.seed, 0, spec.client_id)
            expected = local_train(tiny_model_fn(), spec.dataset, tiny_fl_config,
                                   global_before, seed=seed)
            assert result.client_id == spec.client_id
            assert states_equal(result.state, expected.state)
            assert result.train_loss == expected.train_loss
            assert result.init_loss == expected.init_loss


class TestReadOnlyClientContext:
    @pytest.mark.parametrize("strategy_name", ALL_STRATEGIES)
    def test_client_update_never_writes_context(self, strategy_name):
        """The contract that makes process workers safe: client steps only read."""
        strategy, global_state, _, context = make_round_results(strategy_name)
        assert context.client_storage == {}
        assert context.server_storage == {}
