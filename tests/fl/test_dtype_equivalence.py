"""Float32 equivalence suite: the opt-in fast precision path.

Guarantees under test (FLConfig.dtype="float32"):

* **Cross-executor bit-identity is dtype-independent** — a float32 run is
  bitwise identical across serial/thread/process/shm backends, exactly like
  the float64 golden path.
* **Tolerance equivalence to float64** — final weights and metrics of a
  float32 run match the float64 run of the same spec within
  ``states_allclose`` tolerances (single-precision rounding only, no
  accumulation drift: every aggregation primitive accumulates in float64).
* **Engine-independence under float32** — flat and reference engines agree
  on float32 runs to tolerance (they are pinned bitwise-equal per dtype for
  elementwise ops; reductions may associate differently).
* **Async path** — the event-driven simulation honours the dtype too.
"""

import dataclasses
import multiprocessing
import os
import sys

import numpy as np
import pytest

from repro.fl.async_sim import AsyncFederatedSimulation, FedAsync
from repro.fl.config import FLConfig
from repro.fl.execution import create_executor
from repro.fl.simulation import FederatedSimulation
from repro.fl.strategies import create_strategy
from repro.nn.serialization import (
    state_fingerprint,
    states_allclose,
    states_equal,
)

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
HAS_SHM = HAS_FORK and sys.platform != "darwin" and os.path.isdir("/dev/shm")

BACKENDS = [
    pytest.param("serial", id="serial"),
    pytest.param("thread", id="thread"),
    pytest.param("process", id="process",
                 marks=pytest.mark.skipif(not HAS_FORK,
                                          reason="needs fork start method")),
    pytest.param("shm", id="shm",
                 marks=pytest.mark.skipif(not HAS_SHM,
                                          reason="shm executor needs Linux fork + /dev/shm")),
]

ALL_STRATEGIES = ["fedavg", "fedprox", "qfedavg", "scaffold", "heteroswitch"]

# Single-precision rounding budget for a 2-round run: ~1e-3 relative covers
# the float32 epsilon (1.2e-7) amplified through a few hundred fused
# multiply-adds; anything past that indicates a real dtype leak.
RTOL, ATOL = 1e-3, 1e-5


def run_simulation(strategy_name, bundle, clients, config, model_fn,
                   executor="serial", max_workers=None):
    backend = create_executor(executor, max_workers=max_workers)
    with backend:
        sim = FederatedSimulation(model_fn, clients, bundle.test,
                                  create_strategy(strategy_name), config,
                                  executor=backend)
        history = sim.run()
    return history, sim.global_state


# Serial baselines per (strategy, dtype) at module scope — every test
# compares against these, so each pair runs once.
_BASELINE = {}


def baseline(strategy_name, dtype, bundle, clients, config, model_fn):
    key = (strategy_name, dtype, config)
    if key not in _BASELINE:
        _BASELINE[key] = run_simulation(
            strategy_name, bundle, clients,
            dataclasses.replace(config, dtype=dtype), model_fn)
    return _BASELINE[key]


class TestFloat32CrossExecutor:
    @pytest.mark.parametrize("backend", BACKENDS[1:])
    @pytest.mark.parametrize("strategy_name", ALL_STRATEGIES)
    def test_bitwise_identical_across_executors(
            self, strategy_name, backend, tiny_bundle, tiny_clients,
            tiny_fl_config, tiny_model_fn):
        ref_history, ref_state = baseline(
            strategy_name, "float32", tiny_bundle, tiny_clients,
            tiny_fl_config, tiny_model_fn)
        history, state = run_simulation(
            strategy_name, tiny_bundle, tiny_clients,
            dataclasses.replace(tiny_fl_config, dtype="float32"),
            tiny_model_fn, executor=backend, max_workers=2)
        assert states_equal(ref_state, state)
        assert state_fingerprint(ref_state) == state_fingerprint(state)
        assert history.per_device_metric == ref_history.per_device_metric
        assert [r.mean_train_loss for r in history.rounds] == \
            [r.mean_train_loss for r in ref_history.rounds]

    @pytest.mark.parametrize("strategy_name", ALL_STRATEGIES)
    def test_final_weights_are_float32(self, strategy_name, tiny_bundle,
                                       tiny_clients, tiny_fl_config,
                                       tiny_model_fn):
        _history, state = baseline(
            strategy_name, "float32", tiny_bundle, tiny_clients,
            tiny_fl_config, tiny_model_fn)
        assert all(value.dtype == np.float32 for value in state.values())
        assert all(np.all(np.isfinite(value)) for value in state.values())


class TestFloat32MatchesFloat64:
    @pytest.mark.parametrize("strategy_name", ALL_STRATEGIES)
    def test_weights_within_tolerance(self, strategy_name, tiny_bundle,
                                      tiny_clients, tiny_fl_config,
                                      tiny_model_fn):
        _h64, state64 = baseline(strategy_name, "float64", tiny_bundle,
                                 tiny_clients, tiny_fl_config, tiny_model_fn)
        _h32, state32 = baseline(strategy_name, "float32", tiny_bundle,
                                 tiny_clients, tiny_fl_config, tiny_model_fn)
        assert states_allclose(state64, state32, rtol=RTOL, atol=ATOL)

    @pytest.mark.parametrize("strategy_name", ALL_STRATEGIES)
    def test_metrics_within_tolerance(self, strategy_name, tiny_bundle,
                                      tiny_clients, tiny_fl_config,
                                      tiny_model_fn):
        h64, _ = baseline(strategy_name, "float64", tiny_bundle,
                          tiny_clients, tiny_fl_config, tiny_model_fn)
        h32, _ = baseline(strategy_name, "float32", tiny_bundle,
                          tiny_clients, tiny_fl_config, tiny_model_fn)
        assert h32.per_device_metric.keys() == h64.per_device_metric.keys()
        for device, value in h64.per_device_metric.items():
            assert h32.per_device_metric[device] == pytest.approx(
                value, rel=1e-2, abs=1e-3)
        for r32, r64 in zip(h32.rounds, h64.rounds):
            assert r32.mean_train_loss == pytest.approx(
                r64.mean_train_loss, rel=1e-3)


class TestFloat32EngineEquivalence:
    @pytest.mark.parametrize("strategy_name", ALL_STRATEGIES)
    def test_flat_matches_reference_under_float32(
            self, strategy_name, tiny_bundle, tiny_clients, tiny_fl_config,
            tiny_model_fn):
        config32 = dataclasses.replace(tiny_fl_config, dtype="float32")
        _rh, ref_state = run_simulation(
            strategy_name, tiny_bundle, tiny_clients,
            dataclasses.replace(config32, train_engine="reference"),
            tiny_model_fn)
        _fh, flat_state = run_simulation(
            strategy_name, tiny_bundle, tiny_clients,
            dataclasses.replace(config32, train_engine="flat"), tiny_model_fn)
        assert all(value.dtype == np.float32 for value in ref_state.values())
        assert states_allclose(ref_state, flat_state, rtol=1e-4, atol=1e-6)


class TestAsyncFloat32:
    def _run(self, tiny_model_fn, tiny_clients, tiny_bundle, executor=None,
             dtype="float32"):
        config = FLConfig(num_clients=6, clients_per_round=3, num_rounds=4,
                          local_epochs=1, batch_size=4, learning_rate=0.02,
                          seed=0, dtype=dtype)
        sim = AsyncFederatedSimulation(
            tiny_model_fn, tiny_clients, tiny_bundle.test, FedAsync(),
            config, latency="mild", executor=executor)
        history = sim.run()
        return history, sim.global_state

    def test_async_runs_in_float32(self, tiny_bundle, tiny_clients,
                                   tiny_model_fn):
        history, state = self._run(tiny_model_fn, tiny_clients, tiny_bundle)
        assert len(history.commits) == 4
        assert all(value.dtype == np.float32 for value in state.values())
        assert all(np.all(np.isfinite(value)) for value in state.values())

    def test_async_float32_bitwise_across_executors(self, tiny_bundle,
                                                    tiny_clients,
                                                    tiny_model_fn):
        _sh, serial_state = self._run(tiny_model_fn, tiny_clients, tiny_bundle)
        with create_executor("thread", max_workers=2) as backend:
            _th, thread_state = self._run(tiny_model_fn, tiny_clients,
                                          tiny_bundle, executor=backend)
        assert states_equal(serial_state, thread_state)

    def test_async_float32_metrics_match_float64(self, tiny_bundle,
                                                 tiny_clients, tiny_model_fn):
        h64, state64 = self._run(tiny_model_fn, tiny_clients, tiny_bundle,
                                 dtype="float64")
        h32, state32 = self._run(tiny_model_fn, tiny_clients, tiny_bundle)
        assert states_allclose(state64, state32, rtol=RTOL, atol=ATOL)
        assert h32.per_device_metric.keys() == h64.per_device_metric.keys()
        for device, value in h64.per_device_metric.items():
            assert h32.per_device_metric[device] == pytest.approx(
                value, rel=1e-2, abs=1e-3)
