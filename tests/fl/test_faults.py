"""Tests for deterministic fault injection and fault-tolerance policies.

The guarantees under test (see :mod:`repro.fl.faults`, :mod:`repro.fl.errors`
and the executors' ``run_attempts``):

* fault schedules are pure functions of the plan seed: two chaos runs with
  the same :class:`FaultPlan` produce identical failure schedules and
  bit-identical results on every execution backend;
* a retried client is bit-identical to a first-try client, so a fully
  recovered chaos run equals the fault-free run exactly;
* a quorum-degraded round aggregates the survivors bitwise-equal to a round
  that selected only the survivors — for every strategy, both training
  engines, and both the materialized and streaming execution paths;
* the shared-memory pool self-heals: killed workers are detected mid-round,
  their jobs failed over, and the pool respawned without leaking segments;
* structured :class:`ExecutorError`\\ s survive pickling across process
  boundaries with their client/round/attempt context intact;
* update sanitization rejects NaN/Inf/wrong-shape client updates at the
  aggregation boundary instead of poisoning the global model.
"""

import dataclasses
import multiprocessing
import os
import pickle
import sys

import numpy as np
import pytest

from repro.core.ema import EMALossTracker
from repro.data.dataset import ArrayDataset
from repro.data.partition import ClientSpec
from repro.fl.callbacks import CheckpointCallback, FaultTelemetry
from repro.fl.config import FLConfig
from repro.fl.errors import (
    ClientFailure,
    ExecutorError,
    RoundFailedError,
    RoundTimeout,
    WorkerDied,
)
from repro.fl.execution import create_executor
from repro.fl.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultPolicy,
    fault_rng,
    sanitize_result,
)
from repro.fl.sampling import ClientSampler
from repro.fl.simulation import FederatedSimulation, RoundRecord
from repro.fl.strategies import create_strategy
from repro.fl.strategies.base import FLContext
from repro.fl.training import ClientResult
from repro.nn.models import SimpleMLP
from repro.nn.serialization import StateLayout, get_weights, states_equal
from repro.store.checkpoint import read_checkpoint

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
HAS_SHM = HAS_FORK and sys.platform != "darwin" and os.path.isdir("/dev/shm")

requires_shm = pytest.mark.skipif(
    not HAS_SHM, reason="shm executor needs Linux fork + /dev/shm")

ALL_BACKENDS = [
    pytest.param("serial", id="serial"),
    pytest.param("thread", id="thread"),
    pytest.param("process", id="process",
                 marks=pytest.mark.skipif(not HAS_FORK, reason="needs fork")),
    pytest.param("shm", id="shm",
                 marks=pytest.mark.skipif(not HAS_SHM, reason="needs shm")),
]

ALL_STRATEGIES = ["fedavg", "fedprox", "qfedavg", "scaffold", "heteroswitch"]

NUM_CLIENTS = 6
IMAGE_SIZE = 4
NUM_CLASSES = 2


def shm_entries():
    return set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else set()


def make_population(num_clients=NUM_CLIENTS, samples=4, seed=0):
    rng = np.random.default_rng(seed)
    specs = []
    for client_id in range(num_clients):
        features = np.clip(rng.random((samples, 3, IMAGE_SIZE, IMAGE_SIZE)), 0, 1)
        labels = (features.reshape(samples, -1)[:, 0] > 0.5).astype(int)
        specs.append(ClientSpec(client_id=client_id, device="S6",
                                dataset=ArrayDataset(features, labels)))
    return specs


def model_fn():
    return SimpleMLP(3 * IMAGE_SIZE * IMAGE_SIZE, NUM_CLASSES, hidden=8, seed=0)


def make_test_sets(seed=99):
    rng = np.random.default_rng(seed)
    features = np.clip(rng.random((6, 3, IMAGE_SIZE, IMAGE_SIZE)), 0, 1)
    labels = (features.reshape(6, -1)[:, 0] > 0.5).astype(int)
    return {"S6": ArrayDataset(features, labels)}


def make_config(**overrides):
    base = dict(num_clients=NUM_CLIENTS, clients_per_round=4, num_rounds=2,
                local_epochs=1, batch_size=4, learning_rate=0.05, seed=0)
    base.update(overrides)
    return FLConfig(**base)


class FixedSampler(ClientSampler):
    """Always selects the same client indices (survivors-only replays)."""

    name = "fixed"

    def __init__(self, indices):
        self.indices = list(indices)

    def select(self, num_clients, k, round_index, seed):
        return list(self.indices)


def run_sim(config, backend, strategy_name="fedavg", sampler=None,
            max_workers=2, callbacks=(), population_seed=0):
    clients = make_population(config.num_clients, seed=population_seed)
    with create_executor(backend, max_workers=max_workers) as executor:
        sim = FederatedSimulation(model_fn, clients, make_test_sets(),
                                  create_strategy(strategy_name), config,
                                  sampler=sampler, callbacks=list(callbacks),
                                  executor=executor)
        history = sim.run()
    return history, sim.global_state


class TestFaultPlan:
    def test_decide_is_pure(self):
        plan = FaultPlan(seed=3, crash_rate=0.2, hang_rate=0.2, nan_rate=0.2,
                         shape_rate=0.2, kill_rate=0.2)
        first = [plan.decide(r, c, a)
                 for r in range(4) for c in range(8) for a in range(2)]
        # Re-deciding in a different order changes nothing: each decision is
        # a pure function of (seed, round, client, attempt).
        second = [plan.decide(r, c, a)
                  for a in range(2) for c in range(8) for r in range(4)]
        second = [second[a * 32 + c * 4 + r]
                  for r in range(4) for c in range(8) for a in range(2)]
        assert first == second
        assert set(first) <= set(FAULT_KINDS) | {None}

    def test_rates_decide_cumulatively(self):
        assert FaultPlan(seed=0, crash_rate=1.0).decide(0, 0) == "crash"
        assert FaultPlan(seed=0, kill_rate=1.0).decide(5, 7) == "kill"
        assert FaultPlan(seed=0).decide(0, 0) is None

    def test_first_attempt_only(self):
        plan = FaultPlan(seed=0, crash_rate=1.0, first_attempt_only=True)
        assert plan.decide(0, 0, attempt=0) == "crash"
        assert plan.decide(0, 0, attempt=1) is None

    def test_validation(self):
        with pytest.raises(ValueError, match="crash_rate"):
            FaultPlan(crash_rate=1.5)
        with pytest.raises(ValueError, match="sum to at most 1"):
            FaultPlan(crash_rate=0.6, nan_rate=0.6)
        with pytest.raises(ValueError, match="hang_seconds"):
            FaultPlan(hang_seconds=-1.0)
        with pytest.raises(ValueError, match="max_retries"):
            FaultPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="min_clients"):
            FaultPolicy(min_clients=0)
        with pytest.raises(ValueError, match="client_timeout"):
            FaultPolicy(client_timeout=0.0)

    def test_config_coerces_dicts(self):
        config = make_config(
            faults={"seed": 5, "crash_rate": 0.1},
            fault_policy={"max_retries": 2, "min_clients": 3})
        assert config.faults == FaultPlan(seed=5, crash_rate=0.1)
        assert config.fault_policy.max_retries == 2
        assert hash(config) == hash(dataclasses.replace(config))
        # to_dict() round-trips through the dict coercion.
        again = make_config(faults=config.faults.to_dict(),
                            fault_policy=config.fault_policy.to_dict())
        assert again.faults == config.faults
        assert again.fault_policy == config.fault_policy

    def test_fault_stream_namespace_is_collision_free(self):
        from repro.fl.async_sim.events import _STREAMS
        from repro.fl.faults import FAULT_STREAMS

        assert set(FAULT_STREAMS) <= set(_STREAMS)
        assert len(set(_STREAMS.values())) == len(_STREAMS)
        draws = {fault_rng(0, "inject", 0, 0, 0).random(),
                 fault_rng(0, "backoff", 0, 0, 0).random()}
        assert len(draws) == 2  # distinct streams, distinct draws


class TestErrorPickling:
    @pytest.mark.parametrize("cls,kind", [
        (ExecutorError, "crash"), (ClientFailure, "crash"),
        (WorkerDied, "worker_died"), (RoundTimeout, "timeout")])
    def test_roundtrip_preserves_context(self, cls, kind):
        error = cls("boom happened", client_id=7, round_index=3, attempt=1)
        error.remote_traceback = "Traceback: ..."
        clone = pickle.loads(pickle.dumps(error))
        assert type(clone) is cls
        assert str(clone) == "boom happened"
        assert (clone.client_id, clone.round_index, clone.attempt) == (7, 3, 1)
        assert clone.kind == kind
        assert clone.remote_traceback == "Traceback: ..."
        assert isinstance(clone, RuntimeError)

    def test_round_failed_roundtrip(self):
        error = RoundFailedError("quorum lost", round_index=2, num_ok=1,
                                 num_selected=4, min_clients=3,
                                 failures={5: "crash", 6: "timeout"})
        clone = pickle.loads(pickle.dumps(error))
        assert (clone.num_ok, clone.num_selected, clone.min_clients) == (1, 4, 3)
        assert clone.failures == {5: "crash", 6: "timeout"}
        assert clone.kind == "quorum"


class TestExecutorFailurePaths:
    """run_attempts captures per-job failures instead of failing the wave."""

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("fail_position", range(3))
    def test_client_exception_at_every_position(self, backend, fail_position):
        # Crash exactly one of three jobs: the plan hits every *first*
        # attempt, so marking the other jobs as attempt 1 exempts them.
        clients = make_population()
        config = make_config(
            clients_per_round=3,
            faults=FaultPlan(seed=11, crash_rate=1.0, first_attempt_only=True),
            fault_policy=FaultPolicy(max_retries=1, min_clients=1))
        context = FLContext(config=config, ema=EMALossTracker())
        context.round_index = 0
        selected = clients[:3]
        context.round_selection = [spec.client_id for spec in selected]
        jobs = [(spec, 0 if position == fail_position else 1)
                for position, spec in enumerate(selected)]
        strategy = create_strategy("fedavg")
        with create_executor(backend, max_workers=2) as executor:
            outcomes = executor.run_attempts(
                strategy, model_fn, jobs, get_weights(model_fn()), context,
                config.fault_policy)
        for position, outcome in enumerate(outcomes):
            if position == fail_position:
                assert isinstance(outcome, ClientFailure)
                assert "injected crash" in str(outcome)
                assert outcome.client_id == selected[position].client_id
                assert outcome.round_index == 0
            else:
                assert isinstance(outcome, ClientResult)
                assert outcome.client_id == selected[position].client_id

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_mixed_wave_failures_are_positional(self, backend):
        clients = make_population()
        plan = FaultPlan(seed=11, crash_rate=1.0, first_attempt_only=True)
        config = make_config(
            clients_per_round=3, faults=plan,
            fault_policy=FaultPolicy(max_retries=1, min_clients=1))
        context = FLContext(config=config, ema=EMALossTracker())
        context.round_index = 0
        selected = clients[:3]
        context.round_selection = [spec.client_id for spec in selected]
        # Attempt 0 jobs fail (plan hits every first attempt), attempt 1
        # jobs succeed; interleave them and check outcomes line up.
        jobs = [(selected[0], 0), (selected[1], 1), (selected[2], 0)]
        strategy = create_strategy("fedavg")
        with create_executor(backend, max_workers=2) as executor:
            outcomes = executor.run_attempts(
                strategy, model_fn, jobs, get_weights(model_fn()), context,
                config.fault_policy)
        assert isinstance(outcomes[0], ClientFailure)
        assert isinstance(outcomes[1], ClientResult)
        assert outcomes[1].client_id == selected[1].client_id
        assert isinstance(outcomes[2], ClientFailure)

    @pytest.mark.parametrize("backend", [
        pytest.param("process", id="process",
                     marks=pytest.mark.skipif(not HAS_FORK, reason="fork")),
        pytest.param("shm", id="shm", marks=requires_shm)])
    def test_worker_exit_becomes_worker_died(self, backend):
        config = make_config(
            clients_per_round=2,
            faults=FaultPlan(seed=0, kill_rate=1.0),
            fault_policy=FaultPolicy(max_retries=0, min_clients=1,
                                     worker_timeout=5.0))
        clients = make_population()
        context = FLContext(config=config, ema=EMALossTracker())
        context.round_index = 0
        selected = clients[:2]
        context.round_selection = [spec.client_id for spec in selected]
        jobs = [(spec, 0) for spec in selected]
        strategy = create_strategy("fedavg")
        with create_executor(backend, max_workers=2) as executor:
            outcomes = executor.run_attempts(
                strategy, model_fn, jobs, get_weights(model_fn()), context,
                config.fault_policy)
        assert all(isinstance(outcome, WorkerDied) for outcome in outcomes)
        assert {outcome.kind for outcome in outcomes} == {"worker_died"}

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_injected_hang_times_out(self, backend):
        config = make_config(
            clients_per_round=2,
            faults=FaultPlan(seed=0, hang_rate=1.0, hang_seconds=0.3),
            fault_policy=FaultPolicy(max_retries=0, min_clients=1,
                                     client_timeout=0.05))
        clients = make_population()
        context = FLContext(config=config, ema=EMALossTracker())
        context.round_index = 0
        selected = clients[:2]
        context.round_selection = [spec.client_id for spec in selected]
        strategy = create_strategy("fedavg")
        with create_executor(backend, max_workers=2) as executor:
            outcomes = executor.run_attempts(
                strategy, model_fn, [(spec, 0) for spec in selected],
                get_weights(model_fn()), context, config.fault_policy)
        assert all(isinstance(outcome, RoundTimeout) for outcome in outcomes)
        assert "deadline" in str(outcomes[0])

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_legacy_fail_fast_unchanged(self, backend):
        """Without a policy, a failing client still fails the round loudly."""
        config = make_config(
            clients_per_round=3,
            faults=FaultPlan(seed=11, crash_rate=1.0))
        history_error = None
        try:
            run_sim(config, backend)
        except RuntimeError as exc:
            history_error = exc
        assert history_error is not None
        assert "injected crash" in str(history_error)


class TestRetryDeterminism:
    """A retried client is bit-identical to a first-try client."""

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_crash_then_retry_equals_clean_run(self, backend):
        clean = make_config()
        chaos = dataclasses.replace(
            clean,
            faults=FaultPlan(seed=7, crash_rate=1.0, first_attempt_only=True),
            fault_policy=FaultPolicy(max_retries=1, min_clients=1))
        ref_history, ref_state = run_sim(clean, "serial")
        history, state = run_sim(chaos, backend)
        assert states_equal(ref_state, state)
        assert [r.mean_train_loss for r in history.rounds] == \
            [r.mean_train_loss for r in ref_history.rounds]
        assert history.per_device_metric == ref_history.per_device_metric
        assert all(not r.dropped_clients for r in history.rounds)
        assert all(r.num_failures == 4 and r.num_retries == 4
                   for r in history.rounds)

    @requires_shm
    def test_kill_then_retry_equals_clean_run(self):
        """Worker deaths heal mid-round and the retry recovers everything."""
        before = shm_entries()
        clean = make_config()
        chaos = dataclasses.replace(
            clean,
            faults=FaultPlan(seed=7, kill_rate=1.0, first_attempt_only=True),
            fault_policy=FaultPolicy(max_retries=1, min_clients=1))
        ref_history, ref_state = run_sim(clean, "serial")
        history, state = run_sim(chaos, "shm")
        assert states_equal(ref_state, state)
        assert history.per_device_metric == ref_history.per_device_metric
        assert all(r.failure_kinds == {"worker_died": 4}
                   for r in history.rounds)
        assert shm_entries() == before

    @requires_shm
    def test_shm_pool_respawned_to_full_strength(self):
        config = make_config(
            num_rounds=1,
            faults=FaultPlan(seed=7, kill_rate=1.0, first_attempt_only=True),
            fault_policy=FaultPolicy(max_retries=1, min_clients=1))
        clients = make_population()
        executor = create_executor("shm", max_workers=2)
        with executor:
            sim = FederatedSimulation(model_fn, clients, make_test_sets(),
                                      create_strategy("fedavg"), config,
                                      executor=executor)
            sim.run()
            # Every kill was healed in place: the pool is back at strength
            # with live replacement workers before close().
            assert len(executor._workers) == 2
            assert all(process.is_alive()
                       for process, _ in executor._workers)


class TestChaosDeterminism:
    """Same plan seed -> identical schedules and bit-identical results."""

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_two_runs_identical(self, backend):
        config = make_config(
            faults=FaultPlan(seed=21, crash_rate=0.25, nan_rate=0.2,
                             hang_rate=0.15, hang_seconds=0.01),
            fault_policy=FaultPolicy(max_retries=1, min_clients=1,
                                     client_timeout=5.0))
        first_history, first_state = run_sim(config, backend)
        second_history, second_state = run_sim(config, backend)
        assert states_equal(first_state, second_state)
        assert [r.to_dict() for r in first_history.rounds] == \
            [r.to_dict() for r in second_history.rounds]
        assert first_history.metadata == second_history.metadata
        assert any(r.num_failures for r in first_history.rounds)

    def test_schedule_identical_across_backends(self):
        config = make_config(
            faults=FaultPlan(seed=21, crash_rate=0.25, nan_rate=0.2),
            fault_policy=FaultPolicy(max_retries=1, min_clients=1))
        backends = ["serial", "thread"]
        if HAS_FORK:
            backends.append("process")
        if HAS_SHM:
            backends.append("shm")
        runs = {backend: run_sim(config, backend) for backend in backends}
        reference = runs.pop("serial")
        assert any(r.num_failures for r in reference[0].rounds)
        for backend, (history, state) in runs.items():
            assert states_equal(reference[1], state), backend
            assert [r.to_dict() for r in history.rounds] == \
                [r.to_dict() for r in reference[0].rounds], backend


class TestQuorum:
    def test_quorum_miss_raises_structured_error(self):
        config = make_config(
            faults=FaultPlan(seed=3, crash_rate=1.0),
            fault_policy=FaultPolicy(max_retries=0, min_clients=2))
        with pytest.raises(RoundFailedError) as excinfo:
            run_sim(config, "serial")
        error = excinfo.value
        assert error.num_ok == 0
        assert error.num_selected == 4
        assert error.min_clients == 2
        assert error.round_index == 0
        assert len(error.failures) == 4
        assert error.kind == "quorum"

    def test_quorum_met_degrades_gracefully(self):
        config = make_config(
            faults=FaultPlan(seed=23, crash_rate=0.5),
            fault_policy=FaultPolicy(max_retries=0, min_clients=1))
        history, _ = run_sim(config, "serial")
        assert any(r.dropped_clients for r in history.rounds)
        faults = history.metadata["faults"]
        assert faults["total_dropped"] == sum(
            len(r.dropped_clients) for r in history.rounds)
        assert faults["degraded_rounds"] >= 1

    @pytest.mark.parametrize("backend", [
        pytest.param("serial", id="serial"),
        pytest.param("shm", id="shm", marks=requires_shm)])
    @pytest.mark.parametrize("engine", ["flat", "reference"])
    @pytest.mark.parametrize("strategy_name", ALL_STRATEGIES)
    def test_degraded_equals_survivors_only(self, strategy_name, engine, backend):
        """The tentpole acceptance: degraded == survivors-only, bitwise."""
        chaos = make_config(
            num_rounds=1, train_engine=engine,
            faults=FaultPlan(seed=23, crash_rate=0.5),
            fault_policy=FaultPolicy(max_retries=0, min_clients=1))
        history, state = run_sim(chaos, backend, strategy_name=strategy_name)
        record = history.rounds[0]
        assert record.dropped_clients, "plan seed must drop someone in round 0"
        survivors = [cid for cid in record.selected_clients
                     if cid not in record.dropped_clients]
        assert survivors
        # Replay with a sampler that selects only the survivors and no
        # faults: the degraded round must match it bitwise.
        clean = make_config(num_rounds=1, train_engine=engine,
                            clients_per_round=len(survivors))
        ref_history, ref_state = run_sim(clean, backend,
                                         strategy_name=strategy_name,
                                         sampler=FixedSampler(survivors))
        assert states_equal(ref_state, state)
        assert history.rounds[0].mean_train_loss == \
            ref_history.rounds[0].mean_train_loss
        assert history.rounds[0].ema_loss == ref_history.rounds[0].ema_loss
        assert history.per_device_metric == ref_history.per_device_metric


class TestSanitization:
    def test_sanitize_result_catches_poison(self):
        layout = StateLayout(get_weights(model_fn()))
        clean_state = get_weights(model_fn())
        ok = ClientResult(state=clean_state, num_samples=4, train_loss=0.5,
                          init_loss=0.6)
        assert sanitize_result(ok, layout) is None

        poisoned = {k: v.copy() for k, v in clean_state.items()}
        first = next(iter(poisoned))
        poisoned[first].reshape(-1)[0] = np.nan
        bad = dataclasses.replace(ok, state=poisoned)
        assert "non-finite" in sanitize_result(bad, layout)

        reshaped = {k: v.copy() for k, v in clean_state.items()}
        reshaped[first] = reshaped[first].reshape((1,) + reshaped[first].shape)
        assert "shape mismatch" in sanitize_result(
            dataclasses.replace(ok, state=reshaped), layout)

        missing = {k: v for k, v in clean_state.items() if k != first}
        assert "diverge" in sanitize_result(
            dataclasses.replace(ok, state=missing), layout)

        assert "losses" in sanitize_result(
            dataclasses.replace(ok, train_loss=float("nan")), layout)
        # Streaming results already folded into an accumulator pass through.
        assert sanitize_result(dataclasses.replace(ok, state=None), layout) is None

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_poisoned_updates_rejected_and_recovered(self, backend):
        clean = make_config()
        chaos = dataclasses.replace(
            clean,
            faults=FaultPlan(seed=9, nan_rate=0.5, shape_rate=0.5,
                             first_attempt_only=True),
            fault_policy=FaultPolicy(max_retries=1, min_clients=1))
        ref_history, ref_state = run_sim(clean, "serial")
        history, state = run_sim(chaos, backend)
        assert states_equal(ref_state, state)
        assert history.per_device_metric == ref_history.per_device_metric
        kinds = {kind for record in history.rounds
                 for kind in record.failure_kinds}
        assert kinds == {"sanitize"}
        assert np.all(np.isfinite(np.concatenate(
            [value.reshape(-1) for value in state.values()])))


class TestDegradedResume:
    def test_resume_of_degraded_run_is_bit_identical(self, tmp_path):
        config = make_config(
            num_rounds=3,
            faults=FaultPlan(seed=23, crash_rate=0.4),
            fault_policy=FaultPolicy(max_retries=0, min_clients=1))
        clients = make_population()
        with create_executor("serial") as executor:
            sim = FederatedSimulation(
                model_fn, clients, make_test_sets(),
                create_strategy("fedavg"), config, executor=executor,
                callbacks=[CheckpointCallback(tmp_path, every=1)])
            reference = sim.run()
            ref_state = sim.global_state
        assert any(r.dropped_clients for r in reference.rounds)
        for boundary in (1, 2):
            snapshot, _ = read_checkpoint(tmp_path / f"round_{boundary:05d}.npz")
            with create_executor("serial") as executor:
                resumed = FederatedSimulation(
                    model_fn, clients, make_test_sets(),
                    create_strategy("fedavg"), config, executor=executor)
                resumed.restore(snapshot)
                history = resumed.run()
            assert states_equal(ref_state, resumed.global_state)
            assert [r.to_dict() for r in history.rounds] == \
                [r.to_dict() for r in reference.rounds]
            assert history.metadata == reference.metadata

    def test_round_record_fault_fields_roundtrip(self):
        record = RoundRecord(round_index=1, selected_clients=[1, 2],
                             mean_train_loss=0.5, ema_loss=0.4,
                             num_failures=3, num_retries=2,
                             dropped_clients=[2],
                             failure_kinds={"crash": 2, "timeout": 1})
        clone = RoundRecord.from_dict(record.to_dict())
        assert clone == record

    def test_round_record_reads_legacy_dicts(self):
        legacy = {"round_index": 0, "selected_clients": [1],
                  "mean_train_loss": 0.1, "ema_loss": 0.1}
        record = RoundRecord.from_dict(legacy)
        assert record.num_failures == 0
        assert record.num_retries == 0
        assert record.dropped_clients == []
        assert record.failure_kinds == {}


class TestFaultTelemetry:
    def test_metadata_written_only_when_faults_happen(self):
        clean_history, _ = run_sim(make_config(
            fault_policy=FaultPolicy(max_retries=1, min_clients=1)), "serial")
        assert "faults" not in clean_history.metadata
        chaos_history, _ = run_sim(make_config(
            faults=FaultPlan(seed=23, crash_rate=0.5),
            fault_policy=FaultPolicy(max_retries=0, min_clients=1)), "serial")
        faults = chaos_history.metadata["faults"]
        assert faults["total_failures"] == sum(
            r.num_failures for r in chaos_history.rounds)
        assert faults["failure_kinds"] == {"crash": faults["total_failures"]}

    def test_counters_stream_per_kind(self):
        telemetry = FaultTelemetry()
        _, _ = run_sim(make_config(
            faults=FaultPlan(seed=23, crash_rate=0.5),
            fault_policy=FaultPolicy(max_retries=0, min_clients=1)),
            "serial", callbacks=[telemetry])
        counters = {tuple(sorted(series.labels.items())): series.value
                    for series in telemetry.metrics.series("client_failures")}
        assert counters  # at least one kind counted
        assert all(value > 0 for value in counters.values())
