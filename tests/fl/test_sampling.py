"""Tests for per-round client samplers and resume/replay reproducibility."""

import pytest

from repro.fl.config import FLConfig
from repro.fl.sampling import (
    SAMPLER_REGISTRY,
    RoundRobinSampler,
    UniformSampler,
    WeightedSampler,
    create_sampler,
)
from repro.fl.simulation import FederatedSimulation
from repro.fl.strategies import FedAvg


class TestUniformSampler:
    def test_returns_k_distinct_indices(self):
        sampler = UniformSampler()
        for round_index in range(5):
            picked = sampler.select(10, 4, round_index, seed=0)
            assert len(picked) == 4
            assert len(set(picked)) == 4
            assert all(0 <= i < 10 for i in picked)

    def test_pure_function_of_seed_and_round(self):
        sampler = UniformSampler()
        assert sampler.select(10, 4, 3, seed=7) == sampler.select(10, 4, 3, seed=7)

    def test_round_index_changes_the_draw(self):
        sampler = UniformSampler()
        draws = [tuple(sampler.select(20, 5, r, seed=0)) for r in range(10)]
        assert len(set(draws)) > 1

    def test_seed_changes_the_draw(self):
        sampler = UniformSampler()
        draws = {tuple(sampler.select(20, 5, 0, seed=s)) for s in range(10)}
        assert len(draws) > 1

    def test_stateless_across_instances(self):
        assert UniformSampler().select(10, 4, 2, seed=1) == \
            UniformSampler().select(10, 4, 2, seed=1)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            UniformSampler().select(3, 4, 0, seed=0)
        with pytest.raises(ValueError):
            UniformSampler().select(3, 0, 0, seed=0)


class TestRoundRobinSampler:
    def test_full_coverage_over_a_cycle(self):
        sampler = RoundRobinSampler()
        seen = set()
        for round_index in range(5):
            seen.update(sampler.select(10, 2, round_index, seed=0))
        assert seen == set(range(10))

    def test_deterministic(self):
        sampler = RoundRobinSampler()
        assert sampler.select(10, 3, 4, seed=2) == sampler.select(10, 3, 4, seed=2)


class TestWeightedSampler:
    def test_explicit_weights_replayable(self):
        sampler = WeightedSampler(weights=[4, 2, 1, 1, 1, 1], smoothing=0.0)
        draw = sampler.select(6, 3, round_index=5, seed=7)
        assert len(set(draw)) == 3
        assert draw == sampler.select(6, 3, round_index=5, seed=7)
        assert draw == WeightedSampler(weights=[4, 2, 1, 1, 1, 1],
                                       smoothing=0.0).select(6, 3, 5, 7)

    def test_market_share_weights_favor_dominant_devices(self):
        from types import SimpleNamespace

        # Two S6 clients (38% share each) vs two Pixel5 clients (1% each).
        clients = [SimpleNamespace(device=d) for d in
                   ("S6", "S6", "Pixel5", "Pixel5")]
        sampler = WeightedSampler(weight_by="market_share", smoothing=0.0)
        sampler.bind(clients)
        counts = [0, 0, 0, 0]
        for round_index in range(300):
            for i in sampler.select(4, 2, round_index, seed=0):
                counts[i] += 1
        assert counts[0] + counts[1] > 5 * (counts[2] + counts[3])

    def test_availability_weights_bind(self, tiny_clients):
        sampler = WeightedSampler(weight_by="availability", regime="mild")
        sampler.bind(tiny_clients)
        draw = sampler.select(len(tiny_clients), 3, 0, seed=1)
        assert len(set(draw)) == 3

    def test_unbound_raises(self):
        with pytest.raises(ValueError, match="no weights"):
            WeightedSampler().select(4, 2, 0, seed=0)

    def test_weight_count_mismatch_raises(self):
        sampler = WeightedSampler(weights=[1, 1, 1])
        with pytest.raises(ValueError, match="cover 3 clients"):
            sampler.select(5, 2, 0, seed=0)

    def test_starvation_guard(self):
        sampler = WeightedSampler(weights=[1, 1, 0, 0], smoothing=0.0)
        with pytest.raises(ValueError, match="non-zero weight"):
            sampler.select(4, 3, 0, seed=0)

    def test_smoothing_keeps_everyone_sampleable(self):
        sampler = WeightedSampler(weights=[1, 1, 0, 0], smoothing=0.1)
        assert len(sampler.select(4, 4, 0, seed=0)) == 4

    def test_validation(self):
        with pytest.raises(ValueError, match="weight_by"):
            WeightedSampler(weight_by="karma")
        with pytest.raises(ValueError):
            WeightedSampler(smoothing=-0.1)
        with pytest.raises(ValueError):
            WeightedSampler(weights=[-1.0, 2.0])
        with pytest.raises(ValueError):
            WeightedSampler(weights=[0.0, 0.0], smoothing=0.0)

    def test_simulation_binds_weighted_sampler(self, tiny_bundle, tiny_clients,
                                               tiny_fl_config, tiny_model_fn):
        sampler = WeightedSampler(weight_by="market_share")
        sim = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test,
                                  FedAvg(), tiny_fl_config, sampler=sampler)
        history = sim.run()
        expected = sampler.select(len(tiny_clients),
                                  tiny_fl_config.clients_per_round,
                                  0, tiny_fl_config.seed)
        assert history.rounds[0].selected_clients == expected


class TestSamplerRegistry:
    def test_create_by_name(self):
        assert isinstance(create_sampler("uniform"), UniformSampler)
        assert isinstance(create_sampler("round_robin"), RoundRobinSampler)
        assert isinstance(create_sampler("weighted"), WeightedSampler)

    def test_unknown_sampler_lists_available(self):
        with pytest.raises(KeyError, match="unknown sampler 'x'.*round_robin.*uniform"):
            SAMPLER_REGISTRY["x"]


class TestResumeReplay:
    """select_clients must honour round_index: replaying any round in isolation
    reproduces the full run's per-round participant sets (the old behaviour
    silently discarded round_index and consumed a shared RNG stream)."""

    def test_single_round_replay_matches_full_run(self, tiny_bundle, tiny_clients,
                                                  tiny_model_fn):
        config = FLConfig(num_clients=6, clients_per_round=3, num_rounds=4,
                          batch_size=4, learning_rate=0.02, seed=0)
        full = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test,
                                   FedAvg(), config)
        full_history = full.run()

        # A fresh simulation replaying only round 2 selects the same clients.
        replay = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test,
                                     FedAvg(), config)
        selected = [spec.client_id for spec in replay.select_clients(2)]
        assert selected == full_history.rounds[2].selected_clients

    def test_out_of_order_selection_is_consistent(self, tiny_bundle, tiny_clients,
                                                  tiny_fl_config, tiny_model_fn):
        sim = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test,
                                  FedAvg(), tiny_fl_config)
        forward = [[s.client_id for s in sim.select_clients(r)] for r in range(4)]
        backward = [[s.client_id for s in sim.select_clients(r)]
                    for r in reversed(range(4))]
        assert forward == list(reversed(backward))

    def test_custom_sampler_is_used(self, tiny_bundle, tiny_clients, tiny_fl_config,
                                    tiny_model_fn):
        sim = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test,
                                  FedAvg(), tiny_fl_config, sampler=RoundRobinSampler())
        history = sim.run()
        expected = RoundRobinSampler().select(len(tiny_clients),
                                              tiny_fl_config.clients_per_round,
                                              0, tiny_fl_config.seed)
        assert history.rounds[0].selected_clients == expected
