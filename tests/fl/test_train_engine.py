"""Equivalence suite for the flat-parameter training engine.

The hard guarantee of the flat engine (``FLConfig.train_engine="flat"``, the
default): final weights, per-round metrics and run fingerprints are
**bitwise-identical** to the seed per-parameter path
(``train_engine="reference"``) for every strategy, on every execution
backend, including a checkpoint/resume round-trip through the flat
representation.  Where the engines differ is only wall clock — the
training-throughput benchmark (``benchmarks/test_bench_train.py``) records
that.
"""

import dataclasses
import multiprocessing

import numpy as np
import pytest

from repro.fl.config import FLConfig
from repro.fl.execution import create_executor
from repro.fl.simulation import FederatedSimulation
from repro.fl.strategies import FLContext, create_strategy
from repro.nn.serialization import state_fingerprint, states_equal
from repro.store.checkpoint import read_checkpoint, write_checkpoint

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

BACKENDS = [
    pytest.param("serial", id="serial"),
    pytest.param("thread", id="thread"),
    pytest.param("process", id="process",
                 marks=pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")),
]

ALL_STRATEGIES = ["fedavg", "fedprox", "qfedavg", "scaffold", "heteroswitch"]


def engine_config(config: FLConfig, engine: str, **overrides) -> FLConfig:
    return dataclasses.replace(config, train_engine=engine, **overrides)


def run_simulation(strategy_name, bundle, clients, config, model_fn,
                   executor="serial", max_workers=None):
    backend = create_executor(executor, max_workers=max_workers)
    with backend:
        sim = FederatedSimulation(model_fn, clients, bundle.test,
                                  create_strategy(strategy_name), config,
                                  executor=backend)
        history = sim.run()
    return history, sim.global_state


def assert_run_identical(reference, candidate):
    ref_history, ref_state = reference
    cand_history, cand_state = candidate
    assert [r.mean_train_loss for r in cand_history.rounds] == \
        [r.mean_train_loss for r in ref_history.rounds]
    assert [r.ema_loss for r in cand_history.rounds] == \
        [r.ema_loss for r in ref_history.rounds]
    assert cand_history.per_device_metric == ref_history.per_device_metric
    assert states_equal(ref_state, cand_state)
    assert state_fingerprint(ref_state) == state_fingerprint(cand_state)


# Reference-engine serial baselines, one per (strategy, config) at module scope.
_BASELINE = {}


def reference_baseline(strategy_name, bundle, clients, config, model_fn):
    key = (strategy_name, config)
    if key not in _BASELINE:
        _BASELINE[key] = run_simulation(strategy_name, bundle, clients,
                                        config, model_fn)
    return _BASELINE[key]


class TestFlatMatchesReference:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("strategy_name", ALL_STRATEGIES)
    def test_engine_equivalence(self, strategy_name, backend, tiny_bundle,
                                tiny_clients, tiny_fl_config, tiny_model_fn):
        reference = reference_baseline(
            strategy_name, tiny_bundle, tiny_clients,
            engine_config(tiny_fl_config, "reference"), tiny_model_fn)
        candidate = run_simulation(
            strategy_name, tiny_bundle, tiny_clients,
            engine_config(tiny_fl_config, "flat"), tiny_model_fn,
            executor=backend, max_workers=2 if backend != "serial" else None)
        assert_run_identical(reference, candidate)

    @pytest.mark.parametrize("strategy_name", ["fedavg", "fedprox"])
    def test_engine_equivalence_with_momentum_and_decay(
            self, strategy_name, tiny_bundle, tiny_clients, tiny_fl_config,
            tiny_model_fn):
        """Momentum + weight decay exercise the fused velocity/decay terms."""
        reference = run_simulation(
            strategy_name, tiny_bundle, tiny_clients,
            engine_config(tiny_fl_config, "reference", momentum=0.9,
                          weight_decay=1e-4), tiny_model_fn)
        candidate = run_simulation(
            strategy_name, tiny_bundle, tiny_clients,
            engine_config(tiny_fl_config, "flat", momentum=0.9,
                          weight_decay=1e-4), tiny_model_fn)
        assert_run_identical(reference, candidate)

    def test_flat_is_the_default_engine(self, tiny_fl_config):
        assert tiny_fl_config.train_engine == "flat"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            FLConfig(num_clients=2, clients_per_round=1, train_engine="warp")


class TestCheckpointResumeThroughFlat:
    @pytest.mark.parametrize("strategy_name", ALL_STRATEGIES)
    def test_resume_matches_uninterrupted_reference(
            self, strategy_name, tiny_bundle, tiny_clients, tiny_fl_config,
            tiny_model_fn, tmp_path):
        """Flat run -> snapshot at round 2 -> npz round trip -> resume ==
        the *reference-engine* uninterrupted run, bit for bit."""
        rounds = 4
        config = engine_config(tiny_fl_config, "reference", num_rounds=rounds)
        ref_history, ref_state = run_simulation(
            strategy_name, tiny_bundle, tiny_clients, config, tiny_model_fn)

        flat_config = engine_config(tiny_fl_config, "flat", num_rounds=rounds)
        first = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test,
                                    create_strategy(strategy_name), flat_config)
        first.run(num_rounds=2)
        snapshot = first.snapshot()
        path = tmp_path / f"{strategy_name}.ckpt.npz"
        write_checkpoint(path, snapshot)
        restored, _meta = read_checkpoint(path)

        second = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test,
                                     create_strategy(strategy_name), flat_config)
        second.restore(restored)
        history = second.run()
        assert [r.mean_train_loss for r in history.rounds] == \
            [r.mean_train_loss for r in ref_history.rounds]
        assert history.per_device_metric == ref_history.per_device_metric
        assert states_equal(second.global_state, ref_state)

    def test_cross_engine_resume(self, tiny_bundle, tiny_clients, tiny_fl_config,
                                 tiny_model_fn):
        """A reference-engine checkpoint resumes under the flat engine (and
        vice versa) with identical outcomes: the dict state boundary is
        engine-neutral."""
        rounds = 4
        outcomes = {}
        for first_engine, second_engine in (("reference", "flat"),
                                            ("flat", "reference")):
            first = FederatedSimulation(
                tiny_model_fn, tiny_clients, tiny_bundle.test,
                create_strategy("scaffold"),
                engine_config(tiny_fl_config, first_engine, num_rounds=rounds))
            first.run(num_rounds=2)
            snapshot = first.snapshot()
            second = FederatedSimulation(
                tiny_model_fn, tiny_clients, tiny_bundle.test,
                create_strategy("scaffold"),
                engine_config(tiny_fl_config, second_engine, num_rounds=rounds))
            second.restore(snapshot)
            second.run()
            outcomes[(first_engine, second_engine)] = second.global_state
        assert states_equal(outcomes[("reference", "flat")],
                            outcomes[("flat", "reference")])


class TestFlatAggregationPrimitives:
    def test_average_states_flat_matches_reference(self):
        from repro.nn.engine import engine_mode
        from repro.nn.serialization import average_states

        rng = np.random.default_rng(0)
        states = [{"a": rng.normal(size=(3, 2)), "b": rng.normal(size=4)}
                  for _ in range(5)]
        weights = [3, 1, 4, 1, 5]
        with engine_mode("reference"):
            reference = average_states(states, weights)
        with engine_mode("flat"):
            flat = average_states(states, weights)
        assert states_equal(reference, flat)

    def test_qfedavg_aggregate_flat_matches_reference(self, tiny_fl_config):
        from repro.core.ema import EMALossTracker
        from repro.fl.training import ClientResult
        from repro.nn.engine import engine_mode

        rng = np.random.default_rng(1)
        template = {"w": rng.normal(size=(4, 3)), "b": rng.normal(size=3)}
        results = [
            ClientResult(
                state={key: value + rng.normal(scale=0.1, size=value.shape)
                       for key, value in template.items()},
                num_samples=int(rng.integers(5, 20)),
                train_loss=float(rng.uniform(0.5, 2.0)),
                init_loss=float(rng.uniform(0.5, 2.0)),
                client_id=index,
            )
            for index in range(4)
        ]
        strategy = create_strategy("qfedavg")
        outputs = {}
        for mode in ("reference", "flat"):
            context = FLContext(config=tiny_fl_config,
                                ema=EMALossTracker(alpha=0.9))
            with engine_mode(mode):
                outputs[mode] = strategy.aggregate(
                    {key: value.copy() for key, value in template.items()},
                    list(results), context)
        assert states_equal(outputs["reference"], outputs["flat"])

    def test_weight_averager_flat_matches_reference(self):
        from repro.core.swad import WeightAverager
        from repro.nn.engine import engine_mode

        rng = np.random.default_rng(2)
        snapshots = [{"w": rng.normal(size=(3, 3)), "b": rng.normal(size=2)}
                     for _ in range(7)]
        averages = {}
        for mode in ("reference", "flat"):
            with engine_mode(mode):
                averager = WeightAverager()
                for snapshot in snapshots:
                    averager.update({key: value.copy()
                                     for key, value in snapshot.items()})
                averages[mode] = averager.average()
        assert states_equal(averages["reference"], averages["flat"])

    def test_weight_averager_arena_fast_path_matches_dict_path(self):
        from repro.core.swad import WeightAverager
        from repro.nn.flat import FlatParams
        from repro.nn.models import SimpleMLP

        plain_model = SimpleMLP(4, 2, hidden=3, seed=0)
        flat_model = SimpleMLP(4, 2, hidden=3, seed=0)
        FlatParams.from_module(flat_model)
        rng = np.random.default_rng(3)
        plain_avg, flat_avg = WeightAverager(), WeightAverager()
        for _ in range(5):
            noise = {name: rng.normal(scale=0.1, size=param.data.shape)
                     for name, param in plain_model.named_parameters()}
            for model in (plain_model, flat_model):
                for name, param in model.named_parameters():
                    param.data += noise[name]
            plain_avg.update_from_model(plain_model)
            flat_avg.update_from_model(flat_model)
        assert states_equal(plain_avg.average(), flat_avg.average())
