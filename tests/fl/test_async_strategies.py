"""Tests for the staleness-aware asynchronous strategies (FedAsync/FedBuff)."""

import numpy as np
import pytest

from repro.fl.async_sim.strategies import (
    AsyncCommit,
    AsyncStrategy,
    AsyncUpdate,
    FedAsync,
    FedBuff,
    polynomial_staleness,
)
from repro.core.ema import EMALossTracker
from repro.fl.config import FLConfig
from repro.fl.simulation import FederatedSimulation
from repro.fl.strategies import ASYNC_STRATEGY_NAMES, STRATEGY_REGISTRY, create_strategy
from repro.fl.strategies.base import FLContext
from repro.fl.training import ClientResult


def make_update(vec, dispatched, num_samples=10, client_id=0, loss=1.0):
    vec = np.asarray(vec, dtype=np.float64)
    dispatched = np.asarray(dispatched, dtype=np.float64)
    result = ClientResult(state={}, num_samples=num_samples, train_loss=loss,
                          init_loss=loss, client_id=client_id,
                          metadata={"device": "S6"})
    return AsyncUpdate(result=result, vec=vec, delta=vec - dispatched,
                       dispatch_version=0)


def make_context():
    config = FLConfig(num_clients=4, clients_per_round=2, num_rounds=2,
                      batch_size=2, seed=0)
    return FLContext(config=config, ema=EMALossTracker(alpha=config.ema_alpha))


class TestPolynomialStaleness:
    def test_fresh_update_undiscounted(self):
        assert polynomial_staleness(0, 0.5) == pytest.approx(1.0)

    def test_zero_exponent_disables_discount(self):
        assert polynomial_staleness(9, 0.0) == pytest.approx(1.0)

    def test_polynomial_decay(self):
        assert polynomial_staleness(3, 0.5) == pytest.approx((1 + 3) ** -0.5)
        assert polynomial_staleness(3, 2.0) < polynomial_staleness(3, 0.5)

    def test_negative_staleness_raises(self):
        with pytest.raises(ValueError):
            polynomial_staleness(-1, 0.5)


class TestFedAsync:
    def test_mix_math(self):
        strategy = FedAsync(alpha=0.5, staleness_exponent=1.0)
        global_vec = np.array([1.0, 1.0])
        update = make_update([3.0, 5.0], global_vec)
        commit = strategy.server_update(global_vec, update, staleness=1,
                                        context=make_context())
        # mix = 0.5 * (1 + 1)^-1 = 0.25
        assert np.allclose(commit.vector, 0.75 * global_vec + 0.25 * update.vec)

    def test_every_update_commits(self):
        strategy = FedAsync()
        commit = strategy.server_update(np.zeros(3), make_update(np.ones(3),
                                        np.zeros(3)), 0, make_context())
        assert isinstance(commit, AsyncCommit)
        assert len(commit.entries) == 1
        assert commit.staleness == [0]
        assert commit.entries[0]["device"] == "S6"

    def test_stale_updates_weigh_less(self):
        strategy = FedAsync(alpha=1.0, staleness_exponent=1.0)
        global_vec = np.zeros(2)
        update = make_update(np.ones(2), global_vec)
        fresh = strategy.server_update(global_vec, update, 0, make_context())
        stale = strategy.server_update(global_vec, update, 4, make_context())
        assert np.all(stale.vector < fresh.vector)

    def test_validation(self):
        with pytest.raises(ValueError):
            FedAsync(alpha=0.0)
        with pytest.raises(ValueError):
            FedAsync(alpha=1.5)
        with pytest.raises(ValueError):
            FedAsync(staleness_exponent=-1.0)


class TestFedBuff:
    def test_buffers_until_k_then_commits(self):
        strategy = FedBuff(buffer_size=3, staleness_exponent=0.0, server_lr=1.0)
        context = make_context()
        global_vec = np.zeros(2)
        updates = [make_update(np.full(2, float(i + 1)), global_vec,
                               num_samples=10, client_id=i) for i in range(3)]
        assert strategy.server_update(global_vec, updates[0], 0, context) is None
        assert strategy.server_update(global_vec, updates[1], 0, context) is None
        assert len(strategy.pending_entries(context)) == 2
        commit = strategy.server_update(global_vec, updates[2], 0, context)
        # Equal weights: merged delta is the plain average of [1, 2, 3].
        assert np.allclose(commit.vector, np.full(2, 2.0))
        assert [e["client_id"] for e in commit.entries] == [0, 1, 2]
        assert strategy.pending_entries(context) == []  # buffer cleared

    def test_staleness_discounts_buffer_weights(self):
        strategy = FedBuff(buffer_size=2, staleness_exponent=1.0, server_lr=1.0)
        context = make_context()
        global_vec = np.zeros(1)
        fresh = make_update(np.array([1.0]), global_vec, num_samples=10)
        stale = make_update(np.array([5.0]), global_vec, num_samples=10)
        strategy.server_update(global_vec, fresh, 0, context)
        commit = strategy.server_update(global_vec, stale, 3, context)
        # weights: 10*1 and 10*(1+3)^-1 = 2.5 -> (10*1 + 2.5*5)/12.5 = 1.8
        assert np.allclose(commit.vector, np.array([1.8]))
        assert commit.staleness == [0, 3]

    def test_server_lr_scales_the_step(self):
        context = make_context()
        global_vec = np.ones(2)
        update = make_update(np.full(2, 3.0), global_vec)
        half = FedBuff(buffer_size=1, server_lr=0.5).server_update(
            global_vec, update, 0, context)
        assert np.allclose(half.vector, np.full(2, 2.0))

    def test_pending_entries_carry_no_arrays(self):
        strategy = FedBuff(buffer_size=2)
        context = make_context()
        strategy.server_update(np.zeros(2), make_update(np.ones(2), np.zeros(2)),
                               0, context)
        (entry,) = strategy.pending_entries(context)
        assert "delta" not in entry
        assert entry["client_id"] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            FedBuff(buffer_size=0)
        with pytest.raises(ValueError):
            FedBuff(buffer_size=True)
        with pytest.raises(ValueError):
            FedBuff(server_lr=0.0)


class TestAsyncOnlyContract:
    def test_aggregate_raises(self):
        with pytest.raises(RuntimeError, match="asynchronous-only"):
            FedAsync().aggregate({}, [], make_context())
        with pytest.raises(RuntimeError, match="federated_async"):
            FedBuff().aggregate({}, [], make_context())

    def test_registry_names_and_flag(self):
        assert ASYNC_STRATEGY_NAMES == {"fedasync", "fedbuff"}
        for name in ASYNC_STRATEGY_NAMES:
            assert name in STRATEGY_REGISTRY
            strategy = create_strategy(name)
            assert isinstance(strategy, AsyncStrategy)
            assert strategy.requires_async

    def test_sync_simulation_rejects_async_strategy(
            self, tiny_bundle, tiny_clients, tiny_fl_config, tiny_model_fn):
        with pytest.raises(ValueError, match="AsyncFederatedSimulation"):
            FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test,
                                FedAsync(), tiny_fl_config)
