"""Tests for FL strategies: FedAvg aggregation, q-FedAvg, FedProx, SCAFFOLD."""

import numpy as np
import pytest

from repro.core.ema import EMALossTracker
from repro.data.dataset import ArrayDataset
from repro.data.partition import ClientSpec
from repro.fl.config import FLConfig
from repro.fl.strategies import (
    STRATEGY_REGISTRY,
    FedAvg,
    FedProx,
    FLContext,
    QFedAvg,
    Scaffold,
    create_strategy,
)
from repro.fl.training import ClientResult
from repro.nn.models import SimpleMLP
from repro.nn.serialization import get_weights, state_dict_to_vector


def make_context(config=None, seed=0):
    config = config or FLConfig(num_clients=4, clients_per_round=2, num_rounds=1,
                                batch_size=4, learning_rate=0.1, seed=seed)
    return FLContext(config=config, ema=EMALossTracker())


def make_spec(client_id=0, device="S6", n=12, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, 5))
    labels = (features[:, 0] > 0).astype(int)
    return ClientSpec(client_id=client_id, device=device, dataset=ArrayDataset(features, labels))


def make_result(value, num_samples=1, loss=1.0):
    return ClientResult(state={"w": np.array([float(value)])}, num_samples=num_samples,
                        train_loss=loss, init_loss=loss)


class TestRegistry:
    def test_all_table4_methods_registered(self):
        for name in ("fedavg", "qfedavg", "fedprox", "scaffold",
                     "isp_transform", "isp_swad", "heteroswitch"):
            assert name in STRATEGY_REGISTRY

    def test_create_strategy(self):
        assert isinstance(create_strategy("fedavg"), FedAvg)
        assert isinstance(create_strategy("fedprox", mu=0.5), FedProx)

    def test_unknown_strategy(self):
        with pytest.raises(KeyError):
            create_strategy("fedsgd")

    def test_lazy_heteroswitch_import(self):
        from repro.core.heteroswitch import HeteroSwitch

        assert isinstance(create_strategy("heteroswitch"), HeteroSwitch)


class TestFedAvgAggregation:
    def test_equal_sample_average(self):
        strategy = FedAvg()
        results = [make_result(0.0, 5), make_result(2.0, 5)]
        out = strategy.aggregate({"w": np.array([1.0])}, results, make_context())
        np.testing.assert_allclose(out["w"], [1.0])

    def test_sample_weighted_average(self):
        strategy = FedAvg()
        results = [make_result(0.0, 30), make_result(10.0, 10)]
        out = strategy.aggregate({"w": np.array([0.0])}, results, make_context())
        np.testing.assert_allclose(out["w"], [2.5])

    def test_empty_results_rejected(self):
        with pytest.raises(ValueError):
            FedAvg().aggregate({"w": np.zeros(1)}, [], make_context())

    def test_on_round_end_updates_ema(self):
        context = make_context()
        FedAvg().on_round_end(context, [make_result(0.0, loss=2.0), make_result(0.0, loss=4.0)])
        assert context.ema.value == pytest.approx(3.0)

    def test_client_update_trains(self):
        strategy = FedAvg()
        context = make_context()
        model = SimpleMLP(5, 2, hidden=8, seed=0)
        spec = make_spec()
        global_state = get_weights(model)
        result = strategy.client_update(model, spec, global_state, context)
        assert result.metadata["device"] == "S6"
        assert not np.allclose(state_dict_to_vector(result.state),
                               state_dict_to_vector(global_state))


class TestQFedAvg:
    def test_q_zero_behaves_like_scaled_fedavg_direction(self):
        """With q=0 all clients get equal weight; the update moves toward the client mean."""
        strategy = QFedAvg(q=0.0)
        global_state = {"w": np.array([0.0])}
        results = [make_result(1.0, loss=1.0), make_result(3.0, loss=1.0)]
        out = strategy.aggregate(global_state, results, make_context())
        # Update direction is toward the average of client weights (positive).
        assert out["w"][0] > 0.0

    def test_higher_loss_client_weighted_more(self):
        strategy = QFedAvg(q=2.0)
        global_state = {"w": np.array([0.0])}
        low_loss = ClientResult(state={"w": np.array([1.0])}, num_samples=1,
                                train_loss=0.1, init_loss=0.1)
        high_loss = ClientResult(state={"w": np.array([-1.0])}, num_samples=1,
                                 train_loss=5.0, init_loss=5.0)
        out = strategy.aggregate(global_state, [low_loss, high_loss], make_context())
        # The high-loss client (pushing negative) should dominate the update.
        assert out["w"][0] < 0.0

    def test_negative_q_rejected(self):
        with pytest.raises(ValueError):
            QFedAvg(q=-1.0)

    def test_aggregation_finite(self):
        strategy = QFedAvg(q=1e-6)
        global_state = {"w": np.array([0.5, -0.5])}
        results = [ClientResult(state={"w": np.array([0.3, -0.2])}, num_samples=4,
                                train_loss=1.2, init_loss=1.5),
                   ClientResult(state={"w": np.array([0.6, -0.9])}, num_samples=4,
                                train_loss=0.8, init_loss=0.9)]
        out = strategy.aggregate(global_state, results, make_context())
        assert np.isfinite(out["w"]).all()

    def test_client_update_same_as_fedavg(self):
        """q-FedAvg differs only at aggregation; its client update is FedAvg's."""
        model = SimpleMLP(5, 2, hidden=8, seed=0)
        spec = make_spec()
        global_state = get_weights(model)
        fed = FedAvg().client_update(model, spec, global_state, make_context())
        qfed = QFedAvg().client_update(model, spec, global_state, make_context())
        np.testing.assert_allclose(state_dict_to_vector(fed.state),
                                   state_dict_to_vector(qfed.state))


class TestFedProx:
    def test_negative_mu_rejected(self):
        with pytest.raises(ValueError):
            FedProx(mu=-0.5)

    def test_large_mu_limits_drift(self):
        model = SimpleMLP(5, 2, hidden=8, seed=0)
        spec = make_spec(n=20)
        global_state = get_weights(model)
        # Keep lr * mu well below 1 so the proximal update stays contractive.
        config = FLConfig(num_clients=4, clients_per_round=2, num_rounds=1,
                          batch_size=5, learning_rate=0.1, local_epochs=5, seed=0)
        free = FedProx(mu=0.0).client_update(model, spec, global_state, make_context(config))
        constrained = FedProx(mu=2.0).client_update(model, spec, global_state, make_context(config))
        global_vec = state_dict_to_vector(global_state)
        drift_free = np.linalg.norm(state_dict_to_vector(free.state) - global_vec)
        drift_constrained = np.linalg.norm(state_dict_to_vector(constrained.state) - global_vec)
        assert drift_constrained < drift_free

    def test_mu_zero_matches_fedavg(self):
        model = SimpleMLP(5, 2, hidden=8, seed=0)
        spec = make_spec()
        global_state = get_weights(model)
        fed = FedAvg().client_update(model, spec, global_state, make_context())
        prox = FedProx(mu=0.0).client_update(model, spec, global_state, make_context())
        np.testing.assert_allclose(state_dict_to_vector(fed.state),
                                   state_dict_to_vector(prox.state), atol=1e-10)


class TestScaffold:
    def test_client_update_leaves_context_untouched(self):
        """Client steps are context-read-only so they can run in any worker."""
        strategy = Scaffold()
        context = make_context()
        model = SimpleMLP(5, 2, hidden=8, seed=0)
        spec = make_spec()
        strategy.client_update(model, spec, get_weights(model), context)
        assert context.server_storage == {}
        assert context.client_storage == {}

    def test_on_round_end_applies_client_control_variate(self):
        strategy = Scaffold()
        context = make_context()
        model = SimpleMLP(5, 2, hidden=8, seed=0)
        spec = make_spec()
        result = strategy.client_update(model, spec, get_weights(model), context)
        result.client_id = spec.client_id
        strategy.on_round_end(context, [result])
        c_i = context.client_storage[spec.client_id]["c_i"]
        assert any(np.abs(value).max() > 0 for value in c_i.values())
        # The shipped state was applied verbatim and removed from the payload.
        assert "new_c_i" not in result.metadata

    def test_aggregate_creates_and_updates_server_control(self):
        strategy = Scaffold()
        context = make_context()
        model = SimpleMLP(5, 2, hidden=8, seed=0)
        global_state = get_weights(model)
        results = [strategy.client_update(model, make_spec(i, seed=i), global_state, context)
                   for i in range(2)]
        for i, result in enumerate(results):
            result.client_id = i
        assert "scaffold_c" not in context.server_storage
        strategy.aggregate(global_state, results, context)
        after = context.server_storage["scaffold_c"]
        assert any(np.abs(value).max() > 0 for value in after.values())

    def test_c_delta_and_new_c_i_in_metadata(self):
        strategy = Scaffold()
        context = make_context()
        model = SimpleMLP(5, 2, hidden=8, seed=0)
        result = strategy.client_update(model, make_spec(), get_weights(model), context)
        assert "c_delta" in result.metadata
        assert "new_c_i" in result.metadata
