"""Tests for the federated simulation loop."""

import numpy as np
import pytest

from repro.fl.config import FLConfig
from repro.fl.simulation import FederatedSimulation, FLHistory
from repro.fl.strategies import FedAvg, create_strategy
from repro.nn.serialization import state_dict_to_vector


class TestSimulationConstruction:
    def test_rejects_empty_clients(self, tiny_bundle, tiny_fl_config, tiny_model_fn):
        with pytest.raises(ValueError):
            FederatedSimulation(tiny_model_fn, [], tiny_bundle.test, FedAvg(), tiny_fl_config)

    def test_rejects_empty_test_sets(self, tiny_clients, tiny_fl_config, tiny_model_fn):
        with pytest.raises(ValueError):
            FederatedSimulation(tiny_model_fn, tiny_clients, {}, FedAvg(), tiny_fl_config)

    def test_rejects_mismatched_client_count(self, tiny_bundle, tiny_clients, tiny_model_fn):
        config = FLConfig(num_clients=99, clients_per_round=3, num_rounds=1)
        with pytest.raises(ValueError):
            FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test, FedAvg(), config)


class TestSimulationRun:
    def test_history_structure(self, tiny_bundle, tiny_clients, tiny_fl_config, tiny_model_fn):
        sim = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test, FedAvg(),
                                  tiny_fl_config)
        history = sim.run()
        assert isinstance(history, FLHistory)
        assert len(history.rounds) == tiny_fl_config.num_rounds
        assert set(history.per_device_metric) == set(tiny_bundle.test)
        assert set(history.summary) == {"worst_case", "variance", "average"}

    def test_selects_k_clients_per_round(self, tiny_bundle, tiny_clients, tiny_fl_config,
                                         tiny_model_fn):
        sim = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test, FedAvg(),
                                  tiny_fl_config)
        history = sim.run()
        for record in history.rounds:
            assert len(record.selected_clients) == tiny_fl_config.clients_per_round
            assert len(set(record.selected_clients)) == len(record.selected_clients)

    def test_global_weights_change(self, tiny_bundle, tiny_clients, tiny_fl_config, tiny_model_fn):
        sim = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test, FedAvg(),
                                  tiny_fl_config)
        before = state_dict_to_vector(sim.global_state)
        sim.run()
        after = state_dict_to_vector(sim.global_state)
        assert not np.allclose(before, after)

    def test_ema_tracked_each_round(self, tiny_bundle, tiny_clients, tiny_fl_config, tiny_model_fn):
        sim = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test, FedAvg(),
                                  tiny_fl_config)
        history = sim.run()
        assert all(np.isfinite(record.ema_loss) for record in history.rounds)
        assert len(sim.context.ema.history) == tiny_fl_config.num_rounds

    def test_deterministic_given_seed(self, tiny_bundle, tiny_clients, tiny_fl_config,
                                      tiny_model_fn):
        run1 = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test, FedAvg(),
                                   tiny_fl_config).run()
        run2 = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test, FedAvg(),
                                   tiny_fl_config).run()
        assert run1.per_device_metric == run2.per_device_metric
        assert [r.selected_clients for r in run1.rounds] == [r.selected_clients for r in run2.rounds]

    def test_periodic_evaluation(self, tiny_bundle, tiny_clients, tiny_model_fn):
        config = FLConfig(num_clients=6, clients_per_round=3, num_rounds=4, batch_size=4,
                          learning_rate=0.1, eval_every=2, seed=0)
        sim = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test, FedAvg(), config)
        history = sim.run()
        assert len(history.evaluations) == 2

    def test_run_with_explicit_round_count(self, tiny_bundle, tiny_clients, tiny_fl_config,
                                           tiny_model_fn):
        sim = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test, FedAvg(),
                                  tiny_fl_config)
        history = sim.run(num_rounds=1)
        assert len(history.rounds) == 1

    def test_invalid_round_count(self, tiny_bundle, tiny_clients, tiny_fl_config, tiny_model_fn):
        sim = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test, FedAvg(),
                                  tiny_fl_config)
        with pytest.raises(ValueError):
            sim.run(num_rounds=0)

    def test_global_model_reflects_training(self, tiny_bundle, tiny_clients, tiny_fl_config,
                                            tiny_model_fn):
        sim = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test, FedAvg(),
                                  tiny_fl_config)
        sim.run()
        model = sim.global_model()
        np.testing.assert_allclose(
            state_dict_to_vector(model.state_dict()), state_dict_to_vector(sim.global_state)
        )

    def test_final_train_loss_property(self, tiny_bundle, tiny_clients, tiny_fl_config,
                                       tiny_model_fn):
        sim = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test, FedAvg(),
                                  tiny_fl_config)
        history = sim.run()
        assert history.final_train_loss == history.rounds[-1].mean_train_loss

    def test_empty_history_raises(self):
        with pytest.raises(RuntimeError):
            FLHistory(strategy="x").final_train_loss


class TestAllStrategiesEndToEnd:
    @pytest.mark.parametrize("strategy_name", [
        "fedavg", "qfedavg", "fedprox", "scaffold", "isp_transform", "isp_swad", "heteroswitch",
    ])
    def test_every_strategy_completes(self, strategy_name, tiny_bundle, tiny_clients,
                                      tiny_fl_config, tiny_model_fn):
        sim = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test,
                                  create_strategy(strategy_name), tiny_fl_config)
        history = sim.run()
        assert history.strategy == strategy_name
        assert all(0.0 <= value <= 1.0 for value in history.per_device_metric.values())
        assert np.isfinite(history.final_train_loss)

    def test_heteroswitch_records_switch_counts(self, tiny_bundle, tiny_clients, tiny_fl_config,
                                                tiny_model_fn):
        sim = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test,
                                  create_strategy("heteroswitch"), tiny_fl_config)
        history = sim.run()
        # Counts are recorded per round and bounded by the number of selected clients.
        for record in history.rounds:
            assert 0 <= record.num_switch2 <= record.num_switch1 <= len(record.selected_clients)

    def test_isp_swad_always_switches(self, tiny_bundle, tiny_clients, tiny_fl_config,
                                      tiny_model_fn):
        sim = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test,
                                  create_strategy("isp_swad"), tiny_fl_config)
        history = sim.run()
        for record in history.rounds:
            assert record.num_switch1 == len(record.selected_clients)
            assert record.num_switch2 == len(record.selected_clients)
