"""Determinism suite for the event-driven asynchronous simulation.

The headline guarantees under test:

* **Cross-executor bit-identity** — serial, thread and process backends
  produce identical final weights, commit records and metadata.
* **Checkpoint/resume transparency** — a snapshot taken mid-event-queue
  (through the npz codec) restores into a fresh simulation that finishes
  bit-identically to the uninterrupted run; taking snapshots does not
  perturb the run at all.
* **Deterministic churn** — dropouts, rejoins and lost updates are a pure
  function of the run seed.
"""

import multiprocessing

import numpy as np
import pytest

from repro.devices.latency import DeviceLatencyModel
from repro.fl.async_sim import (
    AsyncFederatedSimulation,
    AsyncFLHistory,
    AsyncTelemetry,
    CommitRecord,
    FedAsync,
    FedBuff,
)
from repro.fl.callbacks import Callback
from repro.fl.config import FLConfig
from repro.fl.simulation import FLHistory, history_from_dict
from repro.fl.strategies import FedAvg
from repro.nn.serialization import state_fingerprint
from repro.store.checkpoint import read_checkpoint, write_checkpoint

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

EXECUTORS = [
    pytest.param("serial", id="serial"),
    pytest.param("thread", id="thread"),
    pytest.param("process", id="process",
                 marks=pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")),
]


def async_config(num_rounds=4, seed=0):
    return FLConfig(num_clients=6, clients_per_round=3, num_rounds=num_rounds,
                    local_epochs=1, batch_size=4, learning_rate=0.02, seed=seed)


def make_sim(tiny_model_fn, tiny_clients, tiny_bundle, strategy=None,
             latency="mild", executor=None, **config_kwargs):
    return AsyncFederatedSimulation(
        tiny_model_fn, tiny_clients, tiny_bundle.test,
        strategy if strategy is not None else FedAsync(),
        async_config(**config_kwargs), latency=latency, executor=executor,
    )


def run_digest(sim, history):
    """Everything that must be bit-identical across backends/resume."""
    return (state_fingerprint(sim.global_state), history.to_dict())


class TestBasics:
    def test_reaches_commit_target(self, tiny_bundle, tiny_clients, tiny_model_fn):
        sim = make_sim(tiny_model_fn, tiny_clients, tiny_bundle)
        history = sim.run()
        assert isinstance(history, AsyncFLHistory)
        assert len(history.commits) == 4
        assert sim.version == 4
        assert [r.round_index for r in history.commits] == [0, 1, 2, 3]
        times = [r.time for r in history.commits]
        assert times == sorted(times) and times[0] > 0.0
        assert all(isinstance(r, CommitRecord) for r in history.commits)
        assert history.metadata["num_commits"] == 4
        assert history.metadata["virtual_seconds"] == pytest.approx(times[-1])
        assert history.per_device_metric  # final evaluation ran

    def test_history_serialization_round_trip(self, tiny_bundle, tiny_clients,
                                              tiny_model_fn):
        history = make_sim(tiny_model_fn, tiny_clients, tiny_bundle,
                           num_rounds=2).run()
        data = history.to_dict()
        assert data["kind"] == "federated_async"
        rebuilt = history_from_dict(data)
        assert isinstance(rebuilt, AsyncFLHistory)
        assert isinstance(rebuilt.commits[0], CommitRecord)
        assert rebuilt.to_dict() == data
        # Synchronous histories still reconstruct as the base class.
        sync = history_from_dict(FLHistory(strategy="fedavg").to_dict())
        assert type(sync) is FLHistory

    def test_rejects_sync_strategy(self, tiny_bundle, tiny_clients, tiny_model_fn):
        with pytest.raises(ValueError, match="AsyncStrategy"):
            AsyncFederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test,
                                     FedAvg(), async_config())

    def test_rejects_incomplete_latency_mapping(self, tiny_bundle, tiny_clients,
                                                tiny_model_fn):
        partial = {"Pixel5": DeviceLatencyModel(
            "Pixel5", compute_rate=100.0, network_seconds=5.0, jitter_sigma=0.0,
            on_fraction=1.0, mean_session_seconds=float("inf"))}
        with pytest.raises(ValueError, match="no latency model"):
            AsyncFederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test,
                                     FedAsync(), async_config(), latency=partial)

    def test_event_budget_guard(self, tiny_bundle, tiny_clients, tiny_model_fn):
        sim = AsyncFederatedSimulation(
            tiny_model_fn, tiny_clients, tiny_bundle.test, FedAsync(),
            async_config(num_rounds=4), latency="mild", max_events=2,
        )
        with pytest.raises(RuntimeError, match="processed 2 events"):
            sim.run()


class TestCrossExecutorDeterminism:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_fedasync_matches_serial(self, executor, tiny_bundle, tiny_clients,
                                     tiny_model_fn):
        reference = make_sim(tiny_model_fn, tiny_clients, tiny_bundle,
                             executor="serial")
        expected = run_digest(reference, reference.run())
        sim = make_sim(tiny_model_fn, tiny_clients, tiny_bundle, executor=executor)
        assert run_digest(sim, sim.run()) == expected

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_fedbuff_extreme_matches_serial(self, executor, tiny_bundle,
                                            tiny_clients, tiny_model_fn):
        def build(backend):
            return make_sim(tiny_model_fn, tiny_clients, tiny_bundle,
                            strategy=FedBuff(buffer_size=2), latency="extreme",
                            executor=backend, num_rounds=3)

        reference = build("serial")
        expected = run_digest(reference, reference.run())
        sim = build(executor)
        assert run_digest(sim, sim.run()) == expected


class TestCheckpointResume:
    @pytest.mark.parametrize("strategy_fn,latency", [
        (lambda: FedAsync(), "mild"),
        (lambda: FedBuff(buffer_size=2), "extreme"),
    ], ids=["fedasync-mild", "fedbuff-extreme"])
    def test_mid_queue_resume_is_bit_identical(self, strategy_fn, latency,
                                               tmp_path, tiny_bundle,
                                               tiny_clients, tiny_model_fn):
        full = make_sim(tiny_model_fn, tiny_clients, tiny_bundle,
                        strategy=strategy_fn(), latency=latency)
        expected = run_digest(full, full.run())

        # Stop after 2 of 4 commits — mid-event-queue, with jobs in flight
        # (and, for fedbuff, possibly a half-full buffer) — checkpoint
        # through the npz codec, and resume in a fresh simulation.
        partial = make_sim(tiny_model_fn, tiny_clients, tiny_bundle,
                           strategy=strategy_fn(), latency=latency)
        partial.run(num_commits=2)
        write_checkpoint(tmp_path / "mid.npz", partial.snapshot())

        resumed = make_sim(tiny_model_fn, tiny_clients, tiny_bundle,
                           strategy=strategy_fn(), latency=latency)
        tree, _meta = read_checkpoint(tmp_path / "mid.npz")
        resumed.restore(tree)
        assert resumed.version == 2
        assert run_digest(resumed, resumed.run()) == expected

    def test_snapshotting_is_observationally_transparent(
            self, tiny_bundle, tiny_clients, tiny_model_fn):
        control = make_sim(tiny_model_fn, tiny_clients, tiny_bundle,
                           latency="extreme")
        expected = run_digest(control, control.run())

        class SnapshotEveryCommit(Callback):
            def on_round_end(self, sim, record, results):
                sim.snapshot()  # forces eager batch flushes mid-run

        observed = AsyncFederatedSimulation(
            tiny_model_fn, tiny_clients, tiny_bundle.test, FedAsync(),
            async_config(), latency="extreme",
            callbacks=[SnapshotEveryCommit()],
        )
        assert run_digest(observed, observed.run()) == expected

    def test_restore_validates_provenance(self, tiny_bundle, tiny_clients,
                                          tiny_model_fn):
        sim = make_sim(tiny_model_fn, tiny_clients, tiny_bundle)
        sim.run(num_commits=1)
        snapshot = sim.snapshot()

        other_strategy = make_sim(tiny_model_fn, tiny_clients, tiny_bundle,
                                  strategy=FedBuff())
        with pytest.raises(ValueError, match="fedasync"):
            other_strategy.restore(snapshot)
        other_seed = make_sim(tiny_model_fn, tiny_clients, tiny_bundle, seed=9)
        with pytest.raises(ValueError, match="seed"):
            other_seed.restore(snapshot)
        with pytest.raises(ValueError, match="synchronous"):
            sim.restore({**snapshot, "kind": "federated"})


class TestChurn:
    @pytest.fixture
    def churny_latency(self, tiny_bundle):
        # Sessions shorter than a round trip: clients frequently drop
        # offline mid-training, so updates are abandoned deterministically.
        return {device: DeviceLatencyModel(
            device, compute_rate=10.0, network_seconds=5.0, jitter_sigma=0.1,
            on_fraction=0.6, mean_session_seconds=4.0,
        ) for device in tiny_bundle.train}

    def test_dropouts_lose_updates_deterministically(
            self, churny_latency, tiny_bundle, tiny_clients, tiny_model_fn):
        def run_once():
            telemetry = AsyncTelemetry()
            sim = AsyncFederatedSimulation(
                tiny_model_fn, tiny_clients, tiny_bundle.test, FedAsync(),
                async_config(), latency=churny_latency, callbacks=[telemetry],
            )
            return run_digest(sim, sim.run())

        first, second = run_once(), run_once()
        assert first == second
        metadata = first[1]["metadata"]
        telemetry = metadata["telemetry"]
        assert metadata["updates_lost"] > 0
        assert telemetry["updates_lost"] == metadata["updates_lost"]
        assert telemetry["dropouts"] > 0 and telemetry["rejoins"] > 0

    def test_lost_updates_never_commit(self, churny_latency, tiny_bundle,
                                       tiny_clients, tiny_model_fn):
        events = []

        class Recorder(Callback):
            def on_event(self, sim, info):
                events.append(info)

        sim = AsyncFederatedSimulation(
            tiny_model_fn, tiny_clients, tiny_bundle.test, FedAsync(),
            async_config(), latency=churny_latency, callbacks=[Recorder()],
        )
        history = sim.run()
        lost_jobs = {e["job_id"] for e in events if e["kind"] == "lost"}
        completed_jobs = {e["job_id"] for e in events if e["kind"] == "completion"}
        assert lost_jobs and not (lost_jobs & completed_jobs)
        committed = sum(len(r.selected_clients) for r in history.commits)
        assert committed == len(completed_jobs) == history.metadata["num_updates"]


class TestFedBuffSemantics:
    def test_commits_fold_exactly_buffer_size_updates(
            self, tiny_bundle, tiny_clients, tiny_model_fn):
        history = make_sim(tiny_model_fn, tiny_clients, tiny_bundle,
                           strategy=FedBuff(buffer_size=2), num_rounds=3).run()
        assert len(history.commits) == 3
        for record in history.commits:
            assert len(record.selected_clients) == 2
            assert len(record.staleness) == 2
            assert all(s >= 0 for s in record.staleness)
        assert history.metadata["num_updates"] == 6

    def test_buffer_flush_order_is_arrival_order(self, tiny_bundle, tiny_clients,
                                                 tiny_model_fn):
        arrivals = []

        class Recorder(Callback):
            def on_event(self, sim, info):
                if info["kind"] == "completion":
                    arrivals.append(info["client_id"])

        sim = AsyncFederatedSimulation(
            tiny_model_fn, tiny_clients, tiny_bundle.test,
            FedBuff(buffer_size=2), async_config(num_rounds=3),
            latency="mild", callbacks=[Recorder()],
        )
        history = sim.run()
        committed = [cid for r in history.commits for cid in r.selected_clients]
        assert committed == arrivals[:len(committed)]


class TestTelemetryAndRegimes:
    def test_telemetry_utilisation_and_participation(self, tiny_bundle,
                                                     tiny_clients, tiny_model_fn):
        telemetry = AsyncTelemetry()
        sim = AsyncFederatedSimulation(
            tiny_model_fn, tiny_clients, tiny_bundle.test, FedAsync(),
            async_config(), latency="uniform", callbacks=[telemetry],
        )
        history = sim.run()
        block = history.metadata["telemetry"]
        assert 0.0 < block["utilisation"] <= 1.0 + 1e-9
        assert sum(block["participation"].values()) == history.metadata["num_updates"]
        assert block["dropouts"] == block["rejoins"] == block["updates_lost"] == 0

    def test_latency_regime_changes_virtual_time_not_commit_count(
            self, tiny_bundle, tiny_clients, tiny_model_fn):
        def virtual_seconds(regime):
            history = make_sim(tiny_model_fn, tiny_clients, tiny_bundle,
                               latency=regime, num_rounds=3).run()
            assert len(history.commits) == 3
            return history.metadata["virtual_seconds"]

        assert virtual_seconds("extreme") > virtual_seconds("uniform")

    def test_staleness_metadata_consistent(self, tiny_bundle, tiny_clients,
                                           tiny_model_fn):
        history = make_sim(tiny_model_fn, tiny_clients, tiny_bundle).run()
        staleness = [s for r in history.commits for s in r.staleness]
        assert history.metadata["mean_staleness"] == pytest.approx(np.mean(staleness))
        assert history.metadata["max_staleness"] == max(staleness)
