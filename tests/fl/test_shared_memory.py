"""Tests for the fleet-scale shared-memory executor and streaming rounds.

The guarantees under test (see :mod:`repro.fl.execution` and the strategies'
``aggregate_stream``):

* an FL run on the ``shm`` backend — persistent fork pool, shared-memory
  weight broadcast, streaming aggregation — is **bit-identical** to the
  serial reference for every strategy, engine, and worker count;
* the broadcast segment's lifecycle is leak-free: it is unlinked on normal
  close, after a failing client, after a crashing worker, and after a
  raising callback;
* streaming aggregation is O(1) in clients/round: the server's peak
  allocation while reducing 64 clients is flat versus 8;
* the streaming protocol fails loudly on out-of-order, short, or
  inconsistent streams rather than silently mis-reducing.
"""

import dataclasses
import os
import sys
import tracemalloc

import numpy as np
import pytest
from test_execution import (
    HAS_FORK,
    assert_bit_identical,
    run_simulation,
    serial_baseline,
)

from repro.core.ema import EMALossTracker
from repro.data.dataset import ArrayDataset
from repro.data.partition import ClientSpec
from repro.fl.callbacks import Callback
from repro.fl.config import FLConfig
from repro.fl.execution import (
    EXECUTOR_REGISTRY,
    ProcessExecutor,
    SerialExecutor,
    SharedMemoryExecutor,
    ThreadExecutor,
    create_executor,
)
from repro.fl.simulation import FederatedSimulation
from repro.fl.strategies import create_strategy
from repro.fl.strategies.base import FedAvg, FLContext, consume_stream
from repro.fl.training import ClientResult
from repro.nn.models import SimpleMLP
from repro.nn.serialization import get_weights, state_fingerprint, states_equal

requires_shm = pytest.mark.skipif(
    not HAS_FORK or sys.platform == "darwin" or not os.path.isdir("/dev/shm"),
    reason="shm executor needs Linux fork + /dev/shm",
)

ALL_STRATEGIES = ["fedavg", "fedprox", "qfedavg", "scaffold", "heteroswitch"]


def shm_entries():
    """Current /dev/shm listing, for leak checks by before/after diff."""
    return set(os.listdir("/dev/shm"))


def make_population(num_clients, samples=4, image_size=4, num_classes=2, seed=0):
    """A synthetic client population with tiny per-client image datasets."""
    rng = np.random.default_rng(seed)
    specs = []
    for client_id in range(num_clients):
        features = np.clip(rng.random((samples, 3, image_size, image_size)), 0, 1)
        labels = (features.reshape(samples, -1)[:, 0] > 0.5).astype(int) % num_classes
        specs.append(ClientSpec(client_id=client_id, device="S6",
                                dataset=ArrayDataset(features, labels)))
    return specs


def make_round(num_clients, **population_kwargs):
    """(strategy-agnostic) specs, global state, context and model factory."""
    specs = make_population(num_clients, **population_kwargs)
    image_size = population_kwargs.get("image_size", 4)
    num_classes = population_kwargs.get("num_classes", 2)

    def model_fn():
        return SimpleMLP(3 * image_size * image_size, num_classes, hidden=8, seed=0)

    config = FLConfig(num_clients=num_clients, clients_per_round=num_clients,
                      num_rounds=1, local_epochs=1, batch_size=4,
                      learning_rate=0.05, seed=0)
    context = FLContext(config=config, ema=EMALossTracker())
    context.round_selection = [spec.client_id for spec in specs]
    return specs, get_weights(model_fn()), context, model_fn


class _ExplodingStrategy(FedAvg):
    """Raises for one designated client; trains the rest normally."""

    def __init__(self, fail_client):
        self.fail_client = fail_client

    def client_update(self, model, spec, global_state, context):
        if spec.client_id == self.fail_client:
            raise RuntimeError("boom: synthetic client failure")
        return super().client_update(model, spec, global_state, context)


class _CrashingStrategy(FedAvg):
    """Kills the worker process outright (no exception to catch)."""

    def __init__(self, crash_client):
        self.crash_client = crash_client

    def client_update(self, model, spec, global_state, context):
        if spec.client_id == self.crash_client:
            os._exit(3)
        return super().client_update(model, spec, global_state, context)


class _MarkedFedAvg(FedAvg):
    """Overrides aggregate without a streaming reduction of its own."""

    def __init__(self):
        self.aggregate_calls = 0

    def aggregate(self, global_state, results, context):
        self.aggregate_calls += 1
        return super().aggregate(global_state, results, context)


class _RaisingCallback(Callback):
    def on_round_end(self, sim, record, results):
        raise RuntimeError("observer failure")


@requires_shm
class TestShmMatchesSerial:
    @pytest.mark.parametrize("strategy_name", ALL_STRATEGIES)
    def test_strategy_matches_serial(self, strategy_name, tiny_bundle,
                                     tiny_clients, tiny_fl_config, tiny_model_fn):
        reference = serial_baseline(strategy_name, tiny_bundle, tiny_clients,
                                    tiny_fl_config, tiny_model_fn)
        candidate = run_simulation(strategy_name, tiny_bundle, tiny_clients,
                                   tiny_fl_config, tiny_model_fn, executor="shm")
        assert_bit_identical(reference, candidate)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_count_irrelevant(self, workers, tiny_bundle, tiny_clients,
                                     tiny_fl_config, tiny_model_fn):
        reference = serial_baseline("fedavg", tiny_bundle, tiny_clients,
                                    tiny_fl_config, tiny_model_fn)
        candidate = run_simulation("fedavg", tiny_bundle, tiny_clients,
                                   tiny_fl_config, tiny_model_fn,
                                   executor="shm", max_workers=workers)
        assert_bit_identical(reference, candidate)

    @pytest.mark.parametrize("strategy_name", ["fedavg", "scaffold"])
    def test_reference_engine_matches_serial(self, strategy_name, tiny_bundle,
                                             tiny_clients, tiny_fl_config,
                                             tiny_model_fn):
        config = dataclasses.replace(tiny_fl_config, train_engine="reference")
        reference = serial_baseline(strategy_name, tiny_bundle, tiny_clients,
                                    config, tiny_model_fn)
        candidate = run_simulation(strategy_name, tiny_bundle, tiny_clients,
                                   config, tiny_model_fn, executor="shm")
        assert_bit_identical(reference, candidate)

    def test_pool_survives_across_runs(self, tiny_bundle, tiny_clients,
                                       tiny_fl_config, tiny_model_fn):
        """A caller-owned executor reuses its worker pool across runs."""
        reference = serial_baseline("fedavg", tiny_bundle, tiny_clients,
                                    tiny_fl_config, tiny_model_fn)
        with create_executor("shm", max_workers=2) as executor:
            strategy = create_strategy("fedavg")

            def build(factory=tiny_model_fn):
                return FederatedSimulation(factory, tiny_clients, tiny_bundle.test,
                                           strategy, tiny_fl_config,
                                           executor=executor)

            sim_a = build()
            history_a = sim_a.run()
            pool_after_first = [proc.pid for proc, _ in executor._workers]
            strategy = create_strategy("fedavg")
            sim_b = build()
            history_b = sim_b.run()
            pool_after_second = [proc.pid for proc, _ in executor._workers]
        assert_bit_identical(reference, (history_a, sim_a.global_state))
        assert_bit_identical(reference, (history_b, sim_b.global_state))
        # Same model factory but a fresh strategy instance: the pool restarts
        # (it inherited the old strategy by fork) — both configurations must
        # still be bit-identical, which the asserts above established.
        assert pool_after_first != [] and pool_after_second != []


@requires_shm
class TestFleetSmoke:
    def test_fleet_64_clients_bit_identical_to_serial(self):
        """One 64-client round on the shm backend vs the serial reference.

        This is the CI ``fleet-scale`` smoke: a population an order of
        magnitude past the unit fixtures, still bit-identical, still
        leak-free.
        """
        before = shm_entries()
        fingerprints = {}
        for executor_name in ["serial", "shm"]:
            specs, global_state, context, model_fn = make_round(64)
            strategy = create_strategy("fedavg")
            with create_executor(executor_name) as executor:
                if getattr(executor, "streaming", False):
                    stream = executor.iter_round(strategy, model_fn, specs,
                                                 global_state, context)
                    new_state, results = strategy.aggregate_stream(
                        global_state, specs, stream, context)
                else:
                    results = executor.run_round(strategy, model_fn, specs,
                                                 global_state, context)
                    new_state = strategy.aggregate(global_state, results, context)
            assert len(results) == 64
            assert [r.client_id for r in results] == [s.client_id for s in specs]
            fingerprints[executor_name] = state_fingerprint(new_state)
        assert fingerprints["shm"] == fingerprints["serial"]
        assert shm_entries() <= before, "leaked /dev/shm segments"


@requires_shm
class TestShmLifecycle:
    def test_segment_unlinked_on_close(self, tiny_bundle, tiny_clients,
                                       tiny_fl_config, tiny_model_fn):
        before = shm_entries()
        executor = create_executor("shm", max_workers=2)
        sim = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test,
                                  create_strategy("fedavg"), tiny_fl_config,
                                  executor=executor)
        sim.run()
        assert executor._segment is not None  # segment alive between rounds
        executor.close()
        assert executor._segment is None
        assert shm_entries() <= before, "leaked /dev/shm segments"

    def test_simulation_owned_executor_closed_after_run(self, tiny_bundle,
                                                        tiny_clients,
                                                        tiny_fl_config,
                                                        tiny_model_fn):
        before = shm_entries()
        sim = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test,
                                  create_strategy("fedavg"), tiny_fl_config,
                                  executor="shm")
        sim.run()
        assert shm_entries() <= before, "leaked /dev/shm segments"

    def test_failing_client_propagates_and_unlinks(self):
        specs, global_state, context, model_fn = make_round(6)
        before = shm_entries()
        executor = create_executor("shm", max_workers=2)
        try:
            strategy = _ExplodingStrategy(fail_client=specs[2].client_id)
            with pytest.raises(RuntimeError, match="boom"):
                executor.run_round(strategy, model_fn, specs, global_state, context)
            # The executor stays usable: the next round forks a fresh pool.
            results = executor.run_round(FedAvg(), model_fn, specs,
                                         global_state, context)
            assert [r.client_id for r in results] == [s.client_id for s in specs]
        finally:
            executor.close()
        assert shm_entries() <= before, "leaked /dev/shm segments"

    def test_worker_crash_detected_and_unlinks(self):
        specs, global_state, context, model_fn = make_round(4)
        before = shm_entries()
        executor = create_executor("shm", max_workers=2)
        try:
            strategy = _CrashingStrategy(crash_client=specs[1].client_id)
            with pytest.raises(RuntimeError, match="died"):
                executor.run_round(strategy, model_fn, specs, global_state, context)
        finally:
            executor.close()
        assert shm_entries() <= before, "leaked /dev/shm segments"

    def test_raising_callback_unlinks(self, tiny_bundle, tiny_clients,
                                      tiny_fl_config, tiny_model_fn):
        """An observer exception mid-run must not leak the broadcast segment."""
        before = shm_entries()
        sim = FederatedSimulation(tiny_model_fn, tiny_clients, tiny_bundle.test,
                                  create_strategy("fedavg"), tiny_fl_config,
                                  callbacks=[_RaisingCallback()], executor="shm")
        with pytest.raises(RuntimeError, match="observer failure"):
            sim.run()
        assert shm_entries() <= before, "leaked /dev/shm segments"


class TestStreamingProtocol:
    def test_streaming_flags(self):
        assert SharedMemoryExecutor.streaming is True
        for backend in [SerialExecutor, ThreadExecutor, ProcessExecutor]:
            assert backend.streaming is False

    def test_registry_contains_shm(self):
        assert "shm" in EXECUTOR_REGISTRY
        assert isinstance(create_executor("shm", max_workers=2),
                          SharedMemoryExecutor)

    def test_iter_round_default_matches_run_round(self, tiny_bundle, tiny_clients,
                                                  tiny_fl_config, tiny_model_fn):
        """Every backend supports iter_round; the default yields run_round."""
        specs, global_state, context, model_fn = make_round(3)
        strategy = create_strategy("fedavg")
        with create_executor("serial") as executor:
            eager = executor.run_round(strategy, model_fn, specs,
                                       global_state, context)
            lazy = list(executor.iter_round(strategy, model_fn, specs,
                                            global_state, context))
        assert [r.client_id for r in lazy] == [r.client_id for r in eager]
        for a, b in zip(eager, lazy):
            assert states_equal(a.state, b.state)

    @requires_shm
    def test_custom_aggregate_override_still_runs(self, tiny_bundle, tiny_clients,
                                                  tiny_fl_config, tiny_model_fn):
        """A strategy with its own aggregate is materialized, not bypassed."""
        marked = _MarkedFedAvg()
        executor = create_executor("shm", max_workers=2)
        with executor:
            sim = FederatedSimulation(tiny_model_fn, tiny_clients,
                                      tiny_bundle.test, marked, tiny_fl_config,
                                      executor=executor)
            sim.run()
        assert marked.aggregate_calls == tiny_fl_config.num_rounds
        reference = serial_baseline("fedavg", tiny_bundle, tiny_clients,
                                    tiny_fl_config, tiny_model_fn)
        assert states_equal(reference[1], sim.global_state)

    def test_out_of_order_stream_rejected(self):
        specs = make_population(3, samples=2, image_size=2)
        results = [ClientResult(state={"w": np.zeros(1)}, num_samples=2,
                                train_loss=0.0, init_loss=0.0,
                                client_id=spec.client_id) for spec in specs]
        swapped = [results[1], results[0], results[2]]
        with pytest.raises(RuntimeError, match="out of order"):
            list(consume_stream(specs, iter(swapped)))

    def test_short_stream_rejected(self):
        specs = make_population(3, samples=2, image_size=2)
        results = [ClientResult(state={"w": np.zeros(1)}, num_samples=2,
                                train_loss=0.0, init_loss=0.0,
                                client_id=spec.client_id) for spec in specs[:2]]
        with pytest.raises(RuntimeError, match="ended early"):
            list(consume_stream(specs, iter(results)))

    def test_sample_count_mismatch_rejected(self):
        specs = make_population(2, samples=2, image_size=2)
        results = [ClientResult(state={"w": np.zeros(1)}, num_samples=99,
                                train_loss=0.0, init_loss=0.0,
                                client_id=spec.client_id) for spec in specs]
        with pytest.raises(RuntimeError, match="num_samples"):
            list(consume_stream(specs, iter(results)))


class TestStreamingMemoryFlat:
    """Streaming aggregation's server peak must not grow with clients/round."""

    @staticmethod
    def _peak_for(num_clients, strategy_name, state_size=20_000):
        specs = make_population(num_clients, samples=2, image_size=2)
        config = FLConfig(num_clients=num_clients, clients_per_round=num_clients,
                          num_rounds=1, batch_size=2, learning_rate=0.05, seed=0)
        context = FLContext(config=config, ema=EMALossTracker())
        context.round_selection = [spec.client_id for spec in specs]
        global_state = {"w": np.zeros(state_size)}
        strategy = create_strategy(strategy_name)

        def stream():
            for position, spec in enumerate(specs):
                result = ClientResult(
                    state={"w": np.full(state_size, float(position + 1))},
                    num_samples=len(spec.dataset), train_loss=0.5,
                    init_loss=1.0, client_id=spec.client_id)
                if strategy_name == "scaffold":
                    result.metadata["c_delta"] = {
                        "w": np.full(state_size, 0.01 * position)}
                    result.metadata["new_c_i"] = {
                        "w": np.full(state_size, 0.02 * position)}
                yield result

        tracemalloc.start()
        new_state, results = strategy.aggregate_stream(
            global_state, specs, stream(), context)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert len(results) == num_clients
        assert all(result.state is None for result in results)
        assert new_state["w"].shape == (state_size,)
        # Scaffold's per-client control variates are persistent algorithm
        # state, not transient round memory; exclude them from the peak
        # comparison by releasing the context afterwards (tracemalloc peak
        # already includes them, so scaffold's flatness is asserted per
        # client count below with the same storage floor on both sides).
        return peak

    @pytest.mark.parametrize("strategy_name", ["fedavg", "qfedavg"])
    def test_peak_flat_in_clients(self, strategy_name):
        peak_small = self._peak_for(8, strategy_name)
        peak_large = self._peak_for(64, strategy_name)
        # Flat = independent of clients/round up to bookkeeping noise: 64
        # clients' worth of retained states would blow well past 2x.
        assert peak_large < 2 * peak_small, (peak_small, peak_large)

    def test_scaffold_peak_is_storage_bound(self):
        """Scaffold retains one c_i per client (algorithmic floor) but no
        transient round memory: peak minus the persistent variates is flat."""
        state_bytes = 20_000 * 8
        peak_small = self._peak_for(8, "scaffold") - 8 * state_bytes
        peak_large = self._peak_for(64, "scaffold") - 64 * state_bytes
        assert peak_large < 2 * peak_small, (peak_small, peak_large)
