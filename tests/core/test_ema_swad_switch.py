"""Tests for the HeteroSwitch building blocks: EMA tracker, weight averagers, switches."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ema import EMALossTracker
from repro.core.swad import SWAAverager, SWADAverager, WeightAverager
from repro.core.switch import SwitchDecision, decide_switch1, decide_switch2
from repro.nn.models import SimpleMLP
from repro.nn.serialization import get_weights


class TestEMALossTracker:
    def test_first_update_seeds_value(self):
        tracker = EMALossTracker(alpha=0.9)
        assert tracker.value is None
        tracker.update(2.0)
        assert tracker.value == pytest.approx(2.0)

    def test_eq1_formula(self):
        tracker = EMALossTracker(alpha=0.9)
        tracker.update(1.0)
        tracker.update(2.0)
        # L_EMA = 0.9 * 2.0 + 0.1 * 1.0
        assert tracker.value == pytest.approx(1.9)

    def test_history_grows(self):
        tracker = EMALossTracker()
        for i in range(5):
            tracker.update(float(i))
        assert len(tracker.history) == 5

    def test_reset(self):
        tracker = EMALossTracker()
        tracker.update(1.0)
        tracker.reset()
        assert tracker.value is None
        assert tracker.history == []

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            EMALossTracker(alpha=0.0)
        with pytest.raises(ValueError):
            EMALossTracker(alpha=1.5)

    def test_non_finite_rejected(self):
        tracker = EMALossTracker()
        with pytest.raises(ValueError):
            tracker.update(float("nan"))

    def test_update_from_clients_mean(self):
        tracker = EMALossTracker()
        tracker.update_from_clients([1.0, 3.0])
        assert tracker.value == pytest.approx(2.0)

    def test_update_from_clients_weighted(self):
        tracker = EMALossTracker()
        tracker.update_from_clients([1.0, 3.0], weights=[3.0, 1.0])
        assert tracker.value == pytest.approx(1.5)

    def test_update_from_clients_validation(self):
        tracker = EMALossTracker()
        with pytest.raises(ValueError):
            tracker.update_from_clients([])
        with pytest.raises(ValueError):
            tracker.update_from_clients([1.0], weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            tracker.update_from_clients([1.0, 2.0], weights=[0.0, 0.0])

    @given(st.lists(st.floats(0.01, 100.0), min_size=1, max_size=30),
           st.floats(0.05, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_ema_stays_within_observed_range(self, losses, alpha):
        tracker = EMALossTracker(alpha=alpha)
        for loss in losses:
            tracker.update(loss)
        assert min(losses) - 1e-9 <= tracker.value <= max(losses) + 1e-9

    def test_converges_to_constant_input(self):
        tracker = EMALossTracker(alpha=0.5)
        tracker.update(10.0)
        for _ in range(60):
            tracker.update(1.0)
        assert tracker.value == pytest.approx(1.0, abs=1e-6)


class TestWeightAverager:
    def test_single_update_is_identity(self):
        averager = WeightAverager()
        state = {"w": np.array([1.0, 2.0])}
        averager.update(state)
        np.testing.assert_allclose(averager.average()["w"], [1.0, 2.0])

    def test_incremental_mean(self):
        averager = WeightAverager()
        for value in (0.0, 2.0, 4.0):
            averager.update({"w": np.array([value])})
        np.testing.assert_allclose(averager.average()["w"], [2.0])
        assert averager.count == 3

    def test_average_before_update_raises(self):
        with pytest.raises(RuntimeError):
            WeightAverager().average()

    def test_mismatched_keys_raise(self):
        averager = WeightAverager({"w": np.zeros(1)})
        with pytest.raises(KeyError):
            averager.update({"v": np.zeros(1)})

    def test_average_returns_copies(self):
        averager = WeightAverager({"w": np.array([1.0])})
        avg = averager.average()
        avg["w"][...] = 99.0
        np.testing.assert_allclose(averager.average()["w"], [1.0])

    def test_reset(self):
        averager = WeightAverager({"w": np.array([1.0])})
        averager.reset()
        assert averager.count == 0

    def test_update_from_model(self):
        model = SimpleMLP(4, 2, hidden=4, seed=0)
        averager = WeightAverager()
        averager.update_from_model(model)
        np.testing.assert_allclose(
            averager.average()["fc1.weight"], get_weights(model)["fc1.weight"]
        )

    @given(st.lists(st.floats(-50, 50), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_average_equals_arithmetic_mean(self, values):
        averager = WeightAverager()
        for value in values:
            averager.update({"w": np.array([value])})
        np.testing.assert_allclose(averager.average()["w"], [np.mean(values)], atol=1e-9)


class TestSWADvsSWA:
    def test_swad_averages_every_batch(self):
        model = SimpleMLP(4, 2, hidden=4, seed=0)
        averager = SWADAverager()
        for batch in range(5):
            averager.on_batch_end(model, batch, 0)
        assert averager.count == 5

    def test_swa_averages_once_per_epoch(self):
        model = SimpleMLP(4, 2, hidden=4, seed=0)
        averager = SWAAverager(batches_per_epoch=4)
        for batch in range(8):  # two epochs worth of batches
            averager.on_batch_end(model, batch, batch // 4)
        assert averager.count == 2

    def test_swa_invalid_batches_per_epoch(self):
        with pytest.raises(ValueError):
            SWAAverager(batches_per_epoch=0)

    def test_swad_average_lies_between_iterates(self):
        averager = SWADAverager()
        model = SimpleMLP(4, 2, hidden=4, seed=0)
        first = get_weights(model)["fc1.weight"].copy()
        averager.update(get_weights(model))
        for p in model.parameters():
            p.data += 1.0
        averager.update_from_model(model)
        avg = averager.average()["fc1.weight"]
        assert (avg >= np.minimum(first, first + 1.0) - 1e-12).all()
        assert (avg <= np.maximum(first, first + 1.0) + 1e-12).all()


class TestSwitchLogic:
    def test_switch1_requires_ema(self):
        assert decide_switch1(0.5, None) is False

    def test_switch1_true_when_init_below_ema(self):
        assert decide_switch1(0.5, 1.0) is True

    def test_switch1_false_when_init_above_ema(self):
        assert decide_switch1(1.5, 1.0) is False

    def test_switch1_false_at_equality(self):
        assert decide_switch1(1.0, 1.0) is False

    def test_switch2_requires_switch1(self):
        assert decide_switch2(False, 0.1, 1.0) is False

    def test_switch2_requires_ema(self):
        assert decide_switch2(True, 0.1, None) is False

    def test_switch2_true_when_train_loss_below_ema(self):
        assert decide_switch2(True, 0.5, 1.0) is True

    def test_switch2_false_when_train_loss_above_ema(self):
        assert decide_switch2(True, 1.5, 1.0) is False

    def test_switch_decision_record(self):
        decision = SwitchDecision(switch1=True, switch2=False, init_loss=0.4,
                                  train_loss=0.6, ema_loss=0.5)
        assert decision.switch1 and not decision.switch2

    @given(st.floats(0.01, 10.0), st.floats(0.01, 10.0), st.floats(0.01, 10.0))
    @settings(max_examples=40, deadline=None)
    def test_switch2_implies_switch1(self, init_loss, train_loss, ema_loss):
        """Invariant of Algorithm 1: Switch 2 can only fire if Switch 1 fired."""
        switch1 = decide_switch1(init_loss, ema_loss)
        switch2 = decide_switch2(switch1, train_loss, ema_loss)
        assert not (switch2 and not switch1)
