"""Tests for the HeteroSwitch strategy (Algorithm 1) and its ablations."""

import numpy as np
import pytest

from repro.core.ema import EMALossTracker
from repro.core.heteroswitch import HeteroSwitch, ISPTransformOnly, ISPTransformWithSWAD
from repro.core.transforms import default_isp_transform, ecg_transform
from repro.data.dataset import ArrayDataset
from repro.data.partition import ClientSpec
from repro.fl.config import FLConfig
from repro.fl.strategies.base import FLContext
from repro.nn.models import SimpleMLP
from repro.nn.serialization import get_weights, state_dict_to_vector


def make_image_spec(client_id=0, n=12, size=8, classes=3, seed=0):
    rng = np.random.default_rng(seed)
    features = np.clip(rng.random((n, 3, size, size)), 0, 1)
    labels = rng.integers(0, classes, size=n)
    return ClientSpec(client_id=client_id, device="S6",
                      dataset=ArrayDataset(features, labels))


def make_context(ema_value=None, seed=0):
    config = FLConfig(num_clients=4, clients_per_round=2, num_rounds=1,
                      batch_size=4, learning_rate=0.1, seed=seed)
    ema = EMALossTracker()
    if ema_value is not None:
        ema.update(ema_value)
    return FLContext(config=config, ema=ema)


def make_model(size=8, classes=3):
    return SimpleMLP(3 * size * size, classes, hidden=8, seed=0)


class TestNCHWTransforms:
    def test_nchw_wrapper_round_trips_layout(self):
        transform = default_isp_transform(wb_degree=0.0, gamma_degree=0.0)
        batch = np.random.default_rng(0).random((2, 3, 4, 4))
        out = transform(batch, np.random.default_rng(0))
        np.testing.assert_allclose(out, batch)

    def test_nchw_wrapper_rejects_wrong_rank(self):
        transform = default_isp_transform()
        with pytest.raises(ValueError):
            transform(np.zeros((3, 4, 4)), np.random.default_rng(0))

    def test_active_transform_changes_batch(self):
        transform = default_isp_transform(wb_degree=0.5, gamma_degree=0.5)
        batch = np.random.default_rng(0).random((2, 3, 4, 4)) * 0.8 + 0.1
        out = transform(batch, np.random.default_rng(0))
        assert not np.allclose(out, batch)
        assert out.shape == batch.shape

    def test_signal_transform(self):
        transform = ecg_transform()
        signals = np.random.default_rng(0).normal(size=(3, 64))
        out = transform(signals, np.random.default_rng(0))
        assert out.shape == signals.shape

    def test_signal_transform_rejects_images(self):
        with pytest.raises(ValueError):
            ecg_transform()(np.zeros((2, 3, 4, 4)), np.random.default_rng(0))


class TestSwitchBehaviour:
    def test_no_ema_behaves_like_fedavg(self):
        """Before the first round, HeteroSwitch has no EMA and must not transform."""
        strategy = HeteroSwitch()
        model = make_model()
        spec = make_image_spec()
        context = make_context(ema_value=None)
        result = strategy.client_update(model, spec, get_weights(model), context)
        decision = result.metadata["switch"]
        assert decision.switch1 is False and decision.switch2 is False

    def test_high_ema_triggers_switch1(self):
        """If the EMA is far above the client's loss, the data is 'already learned'."""
        strategy = HeteroSwitch()
        model = make_model()
        spec = make_image_spec()
        context = make_context(ema_value=100.0)
        result = strategy.client_update(model, spec, get_weights(model), context)
        assert result.metadata["switch"].switch1 is True

    def test_low_ema_keeps_switches_off(self):
        strategy = HeteroSwitch()
        model = make_model()
        spec = make_image_spec()
        context = make_context(ema_value=1e-6)
        result = strategy.client_update(model, spec, get_weights(model), context)
        decision = result.metadata["switch"]
        assert decision.switch1 is False and decision.switch2 is False

    def test_switch2_returns_swad_average(self):
        """With a huge EMA both switches fire and the returned weights are the SWAD average,
        which differs from the weights a plain FedAvg update would return."""
        model = make_model()
        spec = make_image_spec(n=16)
        global_state = get_weights(model)

        hetero = HeteroSwitch(transform=default_isp_transform(wb_degree=0.0, gamma_degree=0.0))
        hetero_result = hetero.client_update(model, spec, global_state, make_context(100.0))
        assert hetero_result.metadata["switch"].switch2 is True

        from repro.fl.strategies.base import FedAvg

        fedavg_result = FedAvg().client_update(model, spec, global_state, make_context(100.0))
        assert not np.allclose(state_dict_to_vector(hetero_result.state),
                               state_dict_to_vector(fedavg_result.state))

    def test_records_device_in_metadata(self):
        strategy = HeteroSwitch()
        model = make_model()
        result = strategy.client_update(model, make_image_spec(), get_weights(model),
                                        make_context(1.0))
        assert result.metadata["device"] == "S6"


class TestAblations:
    def test_isp_transform_only_always_switch1_never_switch2(self):
        strategy = ISPTransformOnly()
        model = make_model()
        result = strategy.client_update(model, make_image_spec(), get_weights(model),
                                        make_context(None))
        decision = result.metadata["switch"]
        assert decision.switch1 is True and decision.switch2 is False

    def test_isp_swad_always_both(self):
        strategy = ISPTransformWithSWAD()
        model = make_model()
        result = strategy.client_update(model, make_image_spec(), get_weights(model),
                                        make_context(None))
        decision = result.metadata["switch"]
        assert decision.switch1 is True and decision.switch2 is True

    def test_custom_transform_used(self):
        calls = {"count": 0}

        class CountingTransform:
            def __call__(self, features, rng):
                calls["count"] += 1
                return features

        strategy = ISPTransformOnly(transform=CountingTransform())
        model = make_model()
        strategy.client_update(model, make_image_spec(), get_weights(model), make_context(None))
        assert calls["count"] > 0

    def test_heteroswitch_with_ecg_transform_on_signals(self):
        """The regression/ECG configuration runs end-to-end with the 1-D transform."""
        rng = np.random.default_rng(0)
        features = rng.normal(size=(12, 32))
        labels = rng.random((12, 1))
        spec = ClientSpec(client_id=0, device="wrist",
                          dataset=ArrayDataset(features, labels))
        config = FLConfig(num_clients=2, clients_per_round=1, num_rounds=1,
                          batch_size=4, learning_rate=0.05, task="regression", seed=0)
        context = FLContext(config=config, ema=EMALossTracker())
        context.ema.update(1e6)  # force the switches on
        model = SimpleMLP(32, 1, hidden=8, seed=0)
        strategy = HeteroSwitch(transform=ecg_transform())
        result = strategy.client_update(model, spec, get_weights(model), context)
        assert result.metadata["switch"].switch1 is True
        assert np.isfinite(result.train_loss)
