"""Shared fixtures for the test suite.

Fixtures deliberately use tiny datasets/models so the full suite stays fast;
the benchmark harness (not the tests) exercises the larger "default" scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.capture import build_device_datasets
from repro.data.dataset import ArrayDataset
from repro.data.partition import build_client_specs
from repro.devices.profiles import market_shares
from repro.fl.config import FLConfig
from repro.nn.models import SimpleMLP


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_bundle():
    """Per-device datasets at the smallest useful size (3 devices, 3 classes)."""
    return build_device_datasets(
        samples_per_class_train=3,
        samples_per_class_test=2,
        num_classes=3,
        image_size=16,
        scene_size=32,
        devices=["Pixel5", "S6", "G7"],
        seed=0,
    )


@pytest.fixture(scope="session")
def tiny_clients(tiny_bundle):
    """Client population over the tiny bundle (uniform shares)."""
    shares = {name: market_shares()[name] for name in tiny_bundle.train}
    return build_client_specs(tiny_bundle.train, num_clients=6, shares=shares, seed=0)


@pytest.fixture
def tiny_fl_config() -> FLConfig:
    return FLConfig(
        num_clients=6,
        clients_per_round=3,
        num_rounds=2,
        local_epochs=1,
        batch_size=4,
        learning_rate=0.02,
        seed=0,
    )


@pytest.fixture
def tiny_model_fn(tiny_bundle):
    image_size = tiny_bundle.image_size
    num_classes = tiny_bundle.num_classes

    def factory() -> SimpleMLP:
        return SimpleMLP(3 * image_size * image_size, num_classes, hidden=16, seed=0)

    return factory


@pytest.fixture
def small_image_dataset(rng) -> ArrayDataset:
    """A small NCHW image classification dataset with learnable structure."""
    n, classes, size = 24, 3, 8
    labels = np.arange(n) % classes
    features = rng.normal(0.5, 0.1, size=(n, 3, size, size))
    # Make each class separable by shifting one channel's mean.
    for i, label in enumerate(labels):
        features[i, label % 3] += 0.5 * (label + 1)
    return ArrayDataset(np.clip(features, 0, 2), labels)
