"""End-to-end acceptance: traced Table-4-style workload + CLI surfacing.

The ISSUE's acceptance criterion: one traced bench run of the Table 4
workload (heteroswitch on device captures, the paper's MobileNetV3-Small)
produces a valid Chrome ``trace_event`` JSON in the run's store entry —
spans for capture, every client update, aggregation and eval, at least five
distinct engine kernels — with a fingerprint bit-identical to the untraced
run.
"""

import json

import pytest

from repro.cli import main
from repro.runtime import Runner, RunSpec, RunStore

DEVICES = ["Pixel5", "S6"]


def table4_spec(*, traced):
    config = {"num_rounds": 1, "num_clients": 4, "clients_per_round": 2,
              "local_epochs": 1}
    if traced:
        config.update(trace=True, profile=True)
    return RunSpec(strategy="heteroswitch", dataset="device_capture",
                   dataset_kwargs={"devices": DEVICES},
                   model="mobilenetv3_small", scale="smoke",
                   config_overrides=config, seeds=[0])


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    """One traced + one untraced run of the acceptance workload (shared:
    MobileNetV3-Small rounds are the most expensive thing in this suite)."""
    root = tmp_path_factory.mktemp("obs-acceptance")
    runner = Runner(store=root / "traced")
    runner.run(table4_spec(traced=True))
    [traced] = RunStore(root / "traced").list_runs()
    Runner(store=root / "untraced").run(table4_spec(traced=False))
    [untraced] = RunStore(root / "untraced").list_runs()
    return traced, untraced


class TestAcceptance:
    def test_fingerprint_identical_to_untraced(self, traced_run):
        traced, untraced = traced_run
        assert traced.run_id == untraced.run_id  # trace/profile are hash-neutral
        assert traced.load_result()["fingerprint"] == \
            untraced.load_result()["fingerprint"]
        assert traced.trace_path.exists()
        assert not untraced.trace_path.exists()

    def test_chrome_trace_is_valid_and_complete(self, traced_run):
        traced, _ = traced_run
        document = json.loads(traced.trace_path.read_text())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        names = [e["name"] for e in complete]
        for required in ("run", "capture", "clients", "aggregate", "evaluate"):
            assert required in names, f"missing span '{required}'"
        # Every selected client produced a client_update span.
        assert names.count("client_update") == 2  # 1 round x 2 clients/round
        kernels = {e["name"] for e in complete if e["name"].startswith("kernel/")}
        assert len(kernels) >= 5, f"expected >=5 distinct kernels, got {kernels}"
        # The conv path is exercised: im2col/col2im among them.
        assert {"kernel/im2col", "kernel/linear"} <= kernels
        # Structural validity: metadata thread names, monotone fields.
        assert any(e["ph"] == "M" and e["name"] == "process_name" for e in events)
        assert all(e["dur"] >= 0.0 and e["ts"] >= 0.0 for e in complete)

    def test_summary_breaks_down_phases_and_kernels(self, traced_run):
        traced, _ = traced_run
        summary = json.loads(traced.obs_summary_path.read_text())
        assert {"capture", "client_train", "aggregate", "eval"} <= \
            set(summary["phases"])
        assert summary["client_updates"]["count"] == 2
        assert len(summary["kernels"]) >= 5
        for entry in summary["kernels"].values():
            assert entry["calls"] > 0 and entry["seconds"] >= 0.0
        # Per-client kernel time is a subset of the client update time.
        assert sum(k["seconds"] for k in summary["kernels"].values()) <= \
            summary["client_updates"]["seconds"] * 1.01
        trained = [m for m in summary["metrics"] if m["name"] == "clients_trained"]
        assert sum(m["value"] for m in trained) == 2

    def test_events_jsonl_round_trips(self, traced_run):
        traced, _ = traced_run
        lines = traced.events_path.read_text().splitlines()
        events = [json.loads(line) for line in lines]
        assert len(events) > 0
        assert all(e["duration"] >= 0.0 for e in events)


class TestCLISurfacing:
    def test_trace_command_summarizes_a_stored_run(self, traced_run, capsys):
        traced, _ = traced_run
        store = str(traced.path.parent)
        assert main(["trace", traced.run_id, "--store", store]) == 0
        out = capsys.readouterr().out
        assert "traced wall clock" in out
        assert "client_train" in out
        assert "kernel" in out
        assert "trace.json" in out

    def test_trace_command_on_untraced_run_errors(self, traced_run, capsys):
        _, untraced = traced_run
        store = str(untraced.path.parent)
        assert main(["trace", untraced.run_id, "--store", store]) == 2
        assert "--trace" in capsys.readouterr().err

    def test_runs_show_includes_phase_breakdown(self, traced_run, capsys):
        traced, _ = traced_run
        store = str(traced.path.parent)
        assert main(["runs", "show", traced.run_id, "--store", store]) == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "client_train" in out

    def test_bench_profile_flag_produces_trace(self, tmp_path, capsys):
        exit_code = main([
            "bench", "--strategy", "fedavg", "--dataset", "device_capture",
            "--scale", "smoke", "--rounds", "1", "--seeds", "0",
            "--profile", "--store", str(tmp_path / "runs"),
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "[trace (seed 0):" in out
        [entry] = RunStore(tmp_path / "runs").list_runs()
        assert entry.trace_path.exists()
        summary = json.loads(entry.obs_summary_path.read_text())
        assert summary["kernels"]  # --profile implies per-kernel timing

    def test_profile_implies_trace_in_spec_overrides(self):
        from repro.cli import _build_spec, build_parser

        parser = build_parser()
        args = parser.parse_args(["bench", "--profile"])
        spec = _build_spec(args)
        assert spec.config_overrides["profile"] is True
        assert spec.config_overrides["trace"] is True
        args = parser.parse_args(["bench", "--trace"])
        spec = _build_spec(args)
        assert spec.config_overrides == {"trace": True}
