"""Unit tests for the repro.obs tracing layer."""

import threading

from repro.obs import Tracer, merge_client_spans


class TestSpans:
    def test_span_records_interval_and_nesting(self):
        tracer = Tracer()
        with tracer.span("outer", index=1):
            assert tracer.current_span == "outer"
            with tracer.span("inner"):
                assert tracer.current_span == "inner"
        assert tracer.current_span is None
        inner, outer = tracer.records  # inner closes first
        assert inner.name == "inner" and inner.parent == "outer"
        assert outer.name == "outer" and outer.parent is None
        assert outer.attrs == {"index": 1}
        assert outer.duration >= inner.duration >= 0.0
        assert outer.start <= inner.start

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        try:
            with tracer.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert tracer.current_span is None
        assert tracer.records[0].name == "boom"

    def test_instant(self):
        tracer = Tracer()
        with tracer.span("round"):
            tracer.instant("commit", version=3)
        instant = tracer.records[0]
        assert instant.kind == "instant"
        assert instant.duration == 0.0
        assert instant.parent == "round"
        assert instant.attrs == {"version": 3}

    def test_ring_buffer_bounds_memory(self):
        tracer = Tracer(maxlen=8)
        for i in range(50):
            tracer.instant("tick", i=i)
        assert len(tracer.records) == 8
        assert tracer.records[0].attrs == {"i": 42}

    def test_thread_spans_get_their_own_stack_and_tid(self):
        tracer = Tracer()
        seen = {}

        def work():
            with tracer.span("worker-span"):
                seen["current"] = tracer.current_span

        with tracer.span("main-span"):
            thread = threading.Thread(target=work, name="worker-1")
            thread.start()
            thread.join()
            assert tracer.current_span == "main-span"
        assert seen["current"] == "worker-span"
        worker = next(r for r in tracer.records if r.name == "worker-span")
        assert worker.tid == "worker-1"
        assert worker.parent is None  # not nested under the main thread's span

    def test_virtual_clock_recorded_when_registered(self):
        tracer = Tracer()
        clock = {"t": 10.0}
        tracer.set_virtual_clock(lambda: clock["t"])
        with tracer.span("flush"):
            clock["t"] = 25.0
        tracer.instant("commit")
        flush, commit = tracer.records
        assert flush.vstart == 10.0 and flush.vduration == 15.0
        assert commit.vstart == 25.0 and commit.vduration == 0.0
        # Without a virtual clock nothing is recorded.
        plain = Tracer()
        with plain.span("x"):
            pass
        assert plain.records[0].vstart is None

    def test_to_dicts_omits_unset_fields(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        [data] = tracer.to_dicts()
        assert data["name"] == "a"
        assert "vstart" not in data and "attrs" not in data and "parent" not in data


class _FakeResult:
    def __init__(self, client_id, metadata):
        self.client_id = client_id
        self.metadata = metadata


class TestMergeClientSpans:
    def test_payloads_become_client_and_kernel_spans(self):
        tracer = Tracer()
        results = [
            _FakeResult(3, {"obs": {"duration": 0.5,
                                    "kernels": {"linear": [4, 0.2],
                                                "im2col": [2, 0.1]}}}),
            _FakeResult(5, {"other": 1}),  # untraced result: untouched
        ]
        merge_client_spans(tracer, 1.0, results, {3: "S6", 5: "G7"})
        spans = {r.name: r for r in tracer.records}
        update = spans["client_update"]
        assert update.tid == "client-3" and update.duration == 0.5
        assert update.attrs == {"client_id": 3, "device": "S6"}
        # Kernel children laid end to end from the anchor, sorted by name.
        assert spans["kernel/im2col"].start == 1.0
        assert spans["kernel/linear"].start == 1.1
        assert spans["kernel/linear"].attrs == {"calls": 4}
        # The payload is popped; other metadata survives.
        assert "obs" not in results[0].metadata
        assert results[1].metadata == {"other": 1}
        # Metrics fold in per device.
        assert tracer.metrics.counter("clients_trained", device="S6").value == 1
        hist = tracer.metrics.histogram("client_update_seconds", device="S6")
        assert hist.count == 1 and hist.total == 0.5
