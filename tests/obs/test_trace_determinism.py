"""Tracing must be purely observational: fingerprints never move.

The headline guarantee of repro.obs — turning on tracing + per-kernel
profiling changes *nothing* about a run's numbers.  Each strategy's golden
fingerprint comes from an untraced serial run; traced runs (serial and shm)
must reproduce it bit-for-bit.
"""

import json

import pytest

from repro.runtime import Runner, RunSpec, RunStore

DEVICES = ["Pixel5", "S6", "G7"]

STRATEGIES = ["fedavg", "fedprox", "heteroswitch", "qfedavg", "scaffold"]


def make_spec(strategy, *, traced, executor="serial", **overrides):
    config = {"num_rounds": 2}
    if traced:
        config.update(trace=True, profile=True)
    base = dict(strategy=strategy, dataset="device_capture",
                dataset_kwargs={"devices": DEVICES}, scale="smoke",
                config_overrides=config, seeds=[0], executor=executor)
    if executor != "serial":
        base["max_workers"] = 2
    base.update(overrides)
    return RunSpec(**base)


def run_fingerprint_of(tmp_path, name, spec):
    runner = Runner(store=tmp_path / name)
    runner.run(spec)
    [entry] = RunStore(tmp_path / name).list_runs()
    return entry.load_result()["fingerprint"], entry


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_traced_run_matches_untraced_golden(tmp_path, strategy):
    golden, _ = run_fingerprint_of(
        tmp_path, "golden", make_spec(strategy, traced=False))
    traced_serial, entry = run_fingerprint_of(
        tmp_path, "serial", make_spec(strategy, traced=True))
    assert traced_serial == golden
    # Trace artifacts exist, and tracing did not leak into result metadata.
    assert entry.trace_path.exists()
    result = entry.load_result()
    assert "obs" not in json.dumps(result["history"])


@pytest.mark.parametrize("strategy", ["fedavg", "heteroswitch"])
def test_traced_shm_run_matches_untraced_golden(tmp_path, strategy):
    """Cross-process collection (packed scalars over the shm result queue)
    must also leave results untouched."""
    golden, _ = run_fingerprint_of(
        tmp_path, "golden", make_spec(strategy, traced=False))
    traced_shm, entry = run_fingerprint_of(
        tmp_path, "shm", make_spec(strategy, traced=True, executor="shm"))
    assert traced_shm == golden
    summary = json.loads(entry.obs_summary_path.read_text())
    assert summary["client_updates"]["count"] > 0  # payloads crossed processes
    assert summary["kernels"]  # with per-kernel breakdowns


def test_traced_async_run_matches_untraced_golden(tmp_path):
    golden, _ = run_fingerprint_of(
        tmp_path, "golden",
        make_spec("fedbuff", traced=False, kind="federated_async"))
    traced, entry = run_fingerprint_of(
        tmp_path, "traced",
        make_spec("fedbuff", traced=True, kind="federated_async"))
    assert traced == golden
    # Async spans carry the virtual clock.
    events = [json.loads(line) for line in
              entry.events_path.read_text().splitlines()]
    assert any(e.get("vstart") is not None for e in events)
    assert any(e["kind"] == "instant" and e["name"] == "commit" for e in events)


def test_trace_and_profile_share_run_directory_with_untraced(tmp_path):
    """trace/profile are result-neutral spec fields: same spec hash, so a
    traced run resumes (and dedups) against an untraced one."""
    store = RunStore(tmp_path / "store")
    untraced, traced = make_spec("fedavg", traced=False), make_spec("fedavg", traced=True)
    assert store.run_id(untraced, 0) == store.run_id(traced, 0)


class _InterruptRun(Exception):
    pass


def test_resumed_traced_run_annotates_the_gap(tmp_path):
    """A run resumed from a checkpoint starts its trace with a resume_gap
    instant (the earlier rounds happened in another process/trace)."""
    from repro.fl.callbacks import CALLBACK_REGISTRY, Callback

    class _CrashOnce(Callback):
        armed = True

        def __init__(self, after_round):
            self.after_round = after_round

        def on_round_start(self, sim, round_index):
            if _CrashOnce.armed and round_index > self.after_round:
                _CrashOnce.armed = False
                raise _InterruptRun()

    CALLBACK_REGISTRY.replace("crash_once_obs", _CrashOnce)
    try:
        spec = make_spec("fedavg", traced=True,
                         config_overrides={"num_rounds": 3, "trace": True,
                                           "profile": True},
                         callbacks={"crash_once_obs": {"after_round": 0}})
        runner = Runner(store=tmp_path / "store", checkpoint_every=1)
        with pytest.raises(_InterruptRun):
            runner.run(spec)
        runner.run(spec, resume=True)
        [entry] = RunStore(tmp_path / "store").list_runs()
        assert entry.status() == "completed"
        events = [json.loads(line) for line in
                  entry.events_path.read_text().splitlines()]
        gaps = [e for e in events if e["name"] == "resume_gap"]
        assert len(gaps) == 1
        assert gaps[0]["attrs"]["next_round"] == 1
        # The resumed trace only spans the remaining rounds.
        clients = [e for e in events if e["name"] == "clients"]
        assert len(clients) == 2
    finally:
        CALLBACK_REGISTRY.unregister("crash_once_obs")
        _CrashOnce.armed = True
