"""Unit tests for the repro.obs metrics registry."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestInstruments:
    def test_counter_inc_and_add(self):
        counter = Counter("hits", {})
        counter.inc()
        counter.inc(4)
        counter.add(0.5)
        assert counter.value == 5.5
        assert counter.summary() == {"value": 5.5}

    def test_counter_rejects_negative(self):
        counter = Counter("hits", {})
        with pytest.raises(ValueError, match=">= 0"):
            counter.inc(-1)
        with pytest.raises(ValueError, match=">= 0"):
            counter.add(-0.1)

    def test_gauge_last_write_wins(self):
        gauge = Gauge("depth", {})
        gauge.set(3.0)
        gauge.set(1.0)
        assert gauge.value == 1.0

    def test_histogram_summary(self):
        hist = Histogram("latency", {})
        for value in (1.0, 3.0, 2.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.summary() == {"count": 3, "sum": 6.0, "min": 1.0,
                                  "max": 3.0, "mean": 2.0}

    def test_empty_histogram_summary(self):
        assert Histogram("latency", {}).summary() == {"count": 0, "sum": 0.0}


class TestRegistry:
    def test_same_key_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("trained", device="S6")
        b = registry.counter("trained", device="S6")
        assert a is b
        assert len(registry) == 1

    def test_distinct_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("trained", device="S6").inc()
        registry.counter("trained", device="G7").inc(2)
        assert len(registry) == 2
        values = {tuple(c.labels.items()): c.value
                  for c in registry.series("trained")}
        assert values == {(("device", "S6"),): 1, (("device", "G7"),): 2}

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("x", device="S6", kind="k")
        b = registry.counter("x", kind="k", device="S6")
        assert a is b

    def test_series_preserves_registration_order(self):
        # Consumers rebuilding legacy outputs fold floats in registration
        # order; sorting here would change FP summation order.
        registry = MetricsRegistry()
        for client in (7, 1, 4):
            registry.counter("busy_seconds", client=client).add(0.1)
        assert [c.labels["client"] for c in registry.series("busy_seconds")] \
            == [7, 1, 4]

    def test_merge_folds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("hits").inc(2)
        b.counter("hits").inc(3)
        b.counter("misses").inc()
        a.histogram("lat").observe(1.0)
        b.histogram("lat").observe(5.0)
        b.gauge("depth").set(9.0)
        a.merge(b)
        assert a.counter("hits").value == 5
        assert a.counter("misses").value == 1
        assert a.histogram("lat").summary()["max"] == 5.0
        assert a.histogram("lat").count == 2
        assert a.gauge("depth").value == 9.0

    def test_snapshot_is_sorted_and_json_compatible(self):
        import json

        registry = MetricsRegistry()
        registry.counter("z").inc()
        registry.counter("a", device="S6").inc()
        registry.histogram("lat").observe(2.0)
        snap = registry.snapshot()
        # Deterministic order: sorted by (kind, name, labels).
        assert snap == sorted(snap, key=lambda r: (r["kind"], r["name"]))
        json.dumps(snap)  # must not raise
        counter_row = next(r for r in snap if r["name"] == "a")
        assert counter_row == {"name": "a", "kind": "counter",
                               "labels": {"device": "S6"}, "value": 1}
