"""Exporters: Chrome trace_event JSON, JSONL event log, trace summary."""

import json

from repro.obs import (
    Tracer,
    chrome_trace,
    export_run_obs,
    merge_client_spans,
    summarize_trace,
)


class _FakeResult:
    def __init__(self, client_id, metadata):
        self.client_id = client_id
        self.metadata = metadata


def make_traced_run():
    """A miniature but structurally complete run trace."""
    tracer = Tracer()
    with tracer.span("run", strategy="fedavg"):
        with tracer.span("capture", dataset="device_capture"):
            pass
        with tracer.span("clients", round=0) as clients:
            pass
        merge_client_spans(tracer, clients.start, [
            _FakeResult(0, {"obs": {"duration": 0.4,
                                    "kernels": {"linear": [3, 0.25],
                                                "im2col": [2, 0.1]}}}),
            _FakeResult(1, {"obs": {"duration": 0.2,
                                    "kernels": {"linear": [3, 0.15]}}}),
        ], {0: "S6", 1: "G7"})
        with tracer.span("aggregate", round=0):
            pass
        tracer.instant("commit", version=1)
        with tracer.span("evaluate", devices=3):
            pass
    return tracer


class TestChromeTrace:
    def test_document_structure(self):
        tracer = make_traced_run()
        document = chrome_trace(tracer.records, metadata={"run_id": "r1"})
        assert document["displayTimeUnit"] == "ms"
        assert document["metadata"] == {"run_id": "r1"}
        json.dumps(document)  # must serialize
        events = document["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in complete} >= {
            "run", "capture", "clients", "client_update", "aggregate",
            "evaluate", "kernel/linear", "kernel/im2col"}
        assert all(isinstance(e["ts"], float) and e["dur"] >= 0 for e in complete)
        assert all(e["pid"] == 1 and isinstance(e["tid"], int) for e in complete)
        assert [e["s"] for e in instants] == ["t"]
        # tid 0 is the server ("main") track; client tracks get their own ids.
        names_by_tid = {e["tid"]: e["args"]["name"] for e in meta
                        if e["name"] == "thread_name"}
        assert names_by_tid[0] == "main"
        assert {"client-0", "client-1"} <= set(names_by_tid.values())
        assert any(e["name"] == "process_name" for e in meta)

    def test_kernel_category_and_parent_args(self):
        document = chrome_trace(make_traced_run().records)
        kernel = next(e for e in document["traceEvents"]
                      if e["name"] == "kernel/linear")
        assert kernel["cat"] == "kernel"
        assert kernel["args"]["parent"] == "client_update"
        assert kernel["args"]["calls"] == 3

    def test_virtual_clock_surfaces_in_args(self):
        tracer = Tracer()
        clock = {"t": 5.0}
        tracer.set_virtual_clock(lambda: clock["t"])
        with tracer.span("flush_batch"):
            clock["t"] = 8.0
        [event] = [e for e in chrome_trace(tracer.records)["traceEvents"]
                   if e["ph"] == "X"]
        assert event["args"]["virtual_start_s"] == 5.0
        assert event["args"]["virtual_duration_s"] == 3.0


class TestSummary:
    def test_phase_and_kernel_buckets(self):
        summary = summarize_trace(make_traced_run())
        assert set(summary["phases"]) == {"capture", "client_train",
                                          "aggregate", "eval"}
        assert summary["phases"]["client_train"]["count"] == 1
        assert summary["kernels"]["linear"] == {
            "calls": 6, "seconds": 0.25 + 0.15}
        assert summary["kernels"]["im2col"]["calls"] == 2
        assert summary["client_updates"]["count"] == 2
        assert summary["client_updates"]["seconds"] == 0.4 + 0.2
        assert summary["instants"] == 1
        assert summary["wall_seconds"] > 0.0
        # Metrics from merge_client_spans ride along.
        trained = [m for m in summary["metrics"] if m["name"] == "clients_trained"]
        assert sum(m["value"] for m in trained) == 2

    def test_summary_is_json_compatible(self):
        json.dumps(summarize_trace(make_traced_run()))


class TestExportRunObs:
    def test_writes_all_three_artifacts(self, tmp_path):
        tracer = make_traced_run()
        paths = export_run_obs(tmp_path, tracer, metadata={"run_id": "r1"})
        document = json.loads((tmp_path / "trace.json").read_text())
        assert document["metadata"]["run_id"] == "r1"
        lines = (tmp_path / "events.jsonl").read_text().splitlines()
        assert len(lines) == len(tracer.records)
        assert all(json.loads(line)["name"] for line in lines)
        summary = json.loads((tmp_path / "obs_summary.json").read_text())
        assert summary["run_id"] == "r1"
        assert set(paths) == {"trace", "events", "summary"}
