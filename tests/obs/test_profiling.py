"""Kernel profiler: gating, accumulation, thread isolation, disabled overhead."""

import threading
import time

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.engine import KERNEL_PROFILER
from repro.nn.layers import Parameter
from repro.nn.optim import SGD
from repro.nn.tensor import Tensor
from repro.obs import PROFILER, KernelProfiler, profile_kernels

assert KERNEL_PROFILER is PROFILER  # one process-global profiler


@pytest.fixture(autouse=True)
def profiler_off():
    """Every test starts and ends with the shared profiler disabled."""
    PROFILER.drain()
    yield
    while PROFILER.enabled:
        PROFILER.deactivate()
    PROFILER.drain()


class TestKernelProfiler:
    def test_disabled_by_default_and_nested_activation(self):
        profiler = KernelProfiler()
        assert not profiler.enabled
        profiler.activate()
        profiler.activate()
        profiler.deactivate()
        assert profiler.enabled  # still one activation outstanding
        profiler.deactivate()
        assert not profiler.enabled
        profiler.deactivate()  # extra deactivate is harmless
        assert not profiler.enabled

    def test_time_accumulates_calls_and_seconds(self):
        profiler = KernelProfiler()
        for _ in range(3):
            with profiler.time("linear"):
                time.sleep(0.001)
        drained = profiler.drain()
        calls, seconds = drained["linear"]
        assert calls == 3
        assert seconds >= 0.003
        assert profiler.drain() == {}  # drain clears

    def test_thread_local_accumulators_do_not_mix(self):
        profiler = KernelProfiler()
        drained = {}

        def work(tag, n):
            for _ in range(n):
                profiler.add(tag, 0.01)
            drained[tag] = profiler.drain()

        threads = [threading.Thread(target=work, args=("a", 2)),
                   threading.Thread(target=work, args=("b", 5))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert drained["a"] == {"a": (2, pytest.approx(0.02))}
        assert drained["b"] == {"b": (5, pytest.approx(0.05))}
        assert profiler.drain() == {}  # main thread saw nothing


class TestEngineIntegration:
    def test_kernels_recorded_only_while_enabled(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(8, 16)))
        w = Tensor(rng.normal(size=(4, 16)))
        F.linear(x, w)
        assert PROFILER.drain() == {}  # disabled: no samples
        with profile_kernels() as profiler:
            F.linear(x, w)
            F.hardswish(x)
            loss = F.cross_entropy(F.linear(x, w), np.zeros(8, dtype=int))
            loss.backward()
        drained = profiler.drain()
        assert drained["linear"][0] == 2
        assert drained["hardswish"][0] == 1
        assert drained["cross_entropy"][0] == 1
        assert all(seconds >= 0.0 for _, seconds in drained.values())

    def test_optimizer_step_recorded(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(4, 8)))
        w = Parameter(rng.normal(size=(3, 8)))
        with profile_kernels() as profiler:
            loss = F.cross_entropy(F.linear(x, w), np.zeros(4, dtype=int))
            loss.backward()
            SGD([w], lr=0.1).step()
        assert profiler.drain()["optim.step"][0] == 1

    def test_profiled_results_match_unprofiled(self):
        rng = np.random.default_rng(1)
        x = Tensor(rng.normal(size=(6, 12)))
        w = Tensor(rng.normal(size=(5, 12)))
        plain = F.linear(x, w).data
        with profile_kernels():
            profiled = F.linear(x, w).data
        PROFILER.drain()
        np.testing.assert_array_equal(plain, profiled)


class TestDisabledOverhead:
    def test_disabled_guard_costs_under_five_percent(self):
        """The documented guarantee: with profiling off, the per-kernel guard
        (one attribute read + branch) adds <5% to realistic kernel calls.

        Each wrapped timing is *flanked* by two bare timings and compared to
        their mean, so linear load drift cancels; the overhead estimate is
        the median flanked ratio.  The two flanks of each triple also give an
        A/A ratio — the same code timed twice — whose median deviation is the
        machine's noise floor; on boxes that cannot resolve 5% the gate
        widens to what an A/A comparison already shows.  The best triple is
        a fallback: a *real* fixed overhead ≥5% would push every flanked
        comparison over budget, so one clean triple clears the gate even
        when a load burst skews the median.
        """
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(64, 256)))
        w = Tensor(rng.normal(size=(128, 256)))

        def sample(fn, iters=100):
            t0 = time.perf_counter()
            for _ in range(iters):
                fn()
            return time.perf_counter() - t0

        assert not PROFILER.enabled
        wrapped_fn = lambda: F.linear(x, w)                    # noqa: E731
        bare_fn = lambda: F._linear_dispatch(x, w, None)       # noqa: E731
        for fn in (wrapped_fn, bare_fn):
            fn()  # warm caches before timing either variant
        ratios, aa_ratios = [], []
        for _ in range(9):
            bare0 = sample(bare_fn)
            wrapped = sample(wrapped_fn)
            bare1 = sample(bare_fn)
            ratios.append(2.0 * wrapped / (bare0 + bare1))
            aa_ratios.append(bare1 / bare0)
        ratios.sort()
        overhead = ratios[len(ratios) // 2] - 1.0
        best = ratios[0] - 1.0
        noise = sorted(abs(r - 1.0) for r in aa_ratios)[len(aa_ratios) // 2]
        gate = max(0.05, 1.5 * noise)
        assert overhead < gate or best < 0.05, (
            f"disabled profiling guard cost {100 * overhead:.2f}% median / "
            f"{100 * best:.2f}% best of 9 flanked triples "
            f"(gate: <{100 * gate:.2f}%, A/A noise floor {100 * noise:.2f}%)"
        )
