"""Tests for the random ISP transforms (Eq. 2 / Eq. 3) and robustness perturbations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isp.transforms import (
    Compose,
    GaussianNoise,
    RandomAffine,
    RandomGamma,
    RandomGaussianFilter1D,
    RandomWhiteBalance,
    apply_gamma,
    apply_white_balance_gains,
)


def make_batch(n=4, size=8, seed=0):
    return np.random.default_rng(seed).random((n, size, size, 3))


class TestPrimitives:
    def test_apply_wb_gains_scales_channels(self):
        images = np.full((2, 4, 4, 3), 0.5)
        out = apply_white_balance_gains(images, [1.0, 0.5, 2.0])
        np.testing.assert_allclose(out[..., 0], 0.5)
        np.testing.assert_allclose(out[..., 1], 0.25)
        np.testing.assert_allclose(out[..., 2], 1.0)

    def test_apply_wb_gains_clips(self):
        out = apply_white_balance_gains(np.full((1, 2, 2, 3), 0.9), [2.0, 2.0, 2.0])
        assert out.max() <= 1.0

    def test_apply_wb_wrong_gain_count(self):
        with pytest.raises(ValueError):
            apply_white_balance_gains(make_batch(), [1.0, 1.0])

    def test_apply_gamma_identity(self):
        images = make_batch()
        np.testing.assert_allclose(apply_gamma(images, 1.0), images)

    def test_apply_gamma_darkens_for_large_gamma(self):
        images = np.full((1, 2, 2, 3), 0.5)
        assert apply_gamma(images, 2.0).mean() < 0.5

    def test_apply_gamma_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            apply_gamma(make_batch(), -1.0)


class TestRandomWhiteBalance:
    def test_output_range(self):
        out = RandomWhiteBalance(0.5)(make_batch(), np.random.default_rng(0))
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_zero_degree_is_identity(self):
        images = make_batch()
        out = RandomWhiteBalance(0.0)(images, np.random.default_rng(0))
        np.testing.assert_allclose(out, images)

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            RandomWhiteBalance(1.5)

    def test_per_sample_mode_varies_across_batch(self):
        images = np.full((8, 4, 4, 3), 0.5)
        out = RandomWhiteBalance(0.5, per_sample=True)(images, np.random.default_rng(0))
        per_sample_means = out.reshape(8, -1).mean(axis=1)
        assert per_sample_means.std() > 0

    def test_deterministic_given_rng(self):
        images = make_batch()
        a = RandomWhiteBalance(0.5)(images, np.random.default_rng(42))
        b = RandomWhiteBalance(0.5)(images, np.random.default_rng(42))
        np.testing.assert_allclose(a, b)

    @given(st.floats(0.0, 0.9))
    @settings(max_examples=20, deadline=None)
    def test_gain_bounds_respected(self, degree):
        """Gains in U(1-d, 1+d) can never brighten beyond (1+d) * input."""
        images = np.full((2, 4, 4, 3), 0.4)
        out = RandomWhiteBalance(degree)(images, np.random.default_rng(0))
        assert out.max() <= min(1.0, 0.4 * (1 + degree)) + 1e-9
        assert out.min() >= 0.4 * (1 - degree) - 1e-9


class TestRandomGamma:
    def test_output_range(self):
        out = RandomGamma(0.5)(make_batch(), np.random.default_rng(0))
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_zero_degree_is_identity(self):
        images = make_batch()
        np.testing.assert_allclose(RandomGamma(0.0)(images, np.random.default_rng(0)), images)

    def test_preserves_black_and_white(self):
        images = np.zeros((1, 2, 2, 3))
        images[0, 0, 0] = 1.0
        out = RandomGamma(0.9)(images, np.random.default_rng(1))
        assert out[0, 0, 0, 0] == pytest.approx(1.0)
        assert out[0, 1, 1, 0] == pytest.approx(0.0)

    def test_per_sample_mode(self):
        images = np.full((8, 4, 4, 3), 0.5)
        out = RandomGamma(0.9, per_sample=True)(images, np.random.default_rng(0))
        assert out.reshape(8, -1).mean(axis=1).std() > 0

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            RandomGamma(-0.1)


class TestOtherTransforms:
    def test_affine_preserves_shape_and_range(self):
        out = RandomAffine(0.5)(make_batch(), np.random.default_rng(0))
        assert out.shape == (4, 8, 8, 3)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_affine_single_image(self):
        image = make_batch(1)[0]
        out = RandomAffine(0.5)(image, np.random.default_rng(0))
        assert out.shape == image.shape

    def test_affine_zero_degree_near_identity(self):
        images = make_batch()
        out = RandomAffine(0.0)(images, np.random.default_rng(0))
        np.testing.assert_allclose(out, images, atol=1e-9)

    def test_gaussian_noise_changes_image(self):
        images = make_batch()
        out = GaussianNoise(1.0)(images, np.random.default_rng(0))
        assert not np.allclose(out, images)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_gaussian_noise_zero_degree_identity(self):
        images = make_batch()
        np.testing.assert_allclose(GaussianNoise(0.0)(images, np.random.default_rng(0)), images)

    def test_gaussian_filter_1d_smooths(self):
        rng = np.random.default_rng(0)
        signals = rng.normal(size=(4, 128))
        out = RandomGaussianFilter1D(1.0, 2.0)(signals, rng)
        assert out.shape == signals.shape
        assert np.var(np.diff(out, axis=-1)) < np.var(np.diff(signals, axis=-1))

    def test_gaussian_filter_invalid_sigmas(self):
        with pytest.raises(ValueError):
            RandomGaussianFilter1D(2.0, 1.0)

    def test_compose_applies_in_order(self):
        images = make_batch()
        composed = Compose([RandomWhiteBalance(0.0), RandomGamma(0.0)])
        np.testing.assert_allclose(composed(images, np.random.default_rng(0)), images)

    def test_compose_with_active_transforms(self):
        images = make_batch()
        composed = Compose([RandomWhiteBalance(0.5), RandomGamma(0.5)])
        out = composed(images, np.random.default_rng(0))
        assert out.shape == images.shape
        assert not np.allclose(out, images)
