"""Tests for ISPConfig / ISPPipeline and the Table 3 stage variants."""

import numpy as np
import pytest

from repro.isp.pipeline import (
    BASELINE_CONFIG,
    ISP_STAGES,
    ISPConfig,
    ISPPipeline,
    OPTION1_CONFIG,
    OPTION2_CONFIG,
    stage_variants,
)
from repro.isp.raw import RawImage, bayer_mosaic


def make_raw(seed=0, size=16):
    rgb = np.random.default_rng(seed).random((size, size, 3))
    return RawImage(bayer_mosaic(rgb))


class TestISPConfig:
    def test_baseline_matches_table3(self):
        assert BASELINE_CONFIG.denoise == "fbdd"
        assert BASELINE_CONFIG.demosaic == "ppg"
        assert BASELINE_CONFIG.white_balance == "gray_world"
        assert BASELINE_CONFIG.gamut == "srgb"
        assert BASELINE_CONFIG.tone == "srgb_gamma"
        assert BASELINE_CONFIG.compression == "jpeg85"

    def test_option2_matches_table3(self):
        assert OPTION2_CONFIG.denoise == "wavelet_bayes"
        assert OPTION2_CONFIG.demosaic == "ahd"
        assert OPTION2_CONFIG.white_balance == "white_patch"
        assert OPTION2_CONFIG.gamut == "prophoto"
        assert OPTION2_CONFIG.compression == "jpeg50"

    def test_option1_omits_stages(self):
        assert OPTION1_CONFIG.denoise == "none"
        assert OPTION1_CONFIG.white_balance == "none"
        assert OPTION1_CONFIG.tone == "none"
        assert OPTION1_CONFIG.demosaic == "binning"  # demosaicing cannot be omitted

    def test_invalid_method_rejected(self):
        with pytest.raises(ValueError):
            ISPConfig(denoise="nonexistent")

    def test_with_stage_returns_new_config(self):
        cfg = BASELINE_CONFIG.with_stage("tone", "none")
        assert cfg.tone == "none"
        assert BASELINE_CONFIG.tone == "srgb_gamma"  # original unchanged

    def test_with_stage_invalid_stage(self):
        with pytest.raises(ValueError):
            BASELINE_CONFIG.with_stage("sharpening", "none")

    def test_as_dict_covers_all_stages(self):
        assert set(BASELINE_CONFIG.as_dict()) == set(ISP_STAGES)


class TestISPPipeline:
    def test_output_shape_and_range(self):
        out = ISPPipeline(BASELINE_CONFIG).process(make_raw())
        assert out.shape == (16, 16, 3)
        assert out.min() >= 0.0 and out.max() <= 1.0

    @pytest.mark.parametrize("config", [BASELINE_CONFIG, OPTION1_CONFIG, OPTION2_CONFIG])
    def test_all_reference_configs_run(self, config):
        out = ISPPipeline(config).process(make_raw(seed=1))
        assert np.isfinite(out).all()

    def test_different_configs_produce_different_images(self):
        raw = make_raw(seed=2)
        base = ISPPipeline(BASELINE_CONFIG).process(raw)
        alt = ISPPipeline(OPTION2_CONFIG).process(raw)
        assert np.abs(base - alt).mean() > 0.01

    def test_deterministic(self):
        raw = make_raw(seed=3)
        a = ISPPipeline(BASELINE_CONFIG).process(raw)
        b = ISPPipeline(BASELINE_CONFIG).process(raw)
        np.testing.assert_allclose(a, b)

    def test_callable_interface(self):
        pipeline = ISPPipeline()
        raw = make_raw()
        np.testing.assert_allclose(pipeline(raw), pipeline.process(raw))


class TestStageVariants:
    def test_two_variants_per_stage(self):
        variants = stage_variants(BASELINE_CONFIG)
        # Six stages x two options each, minus duplicates identical to baseline.
        assert len(variants) == 12

    def test_each_variant_differs_in_exactly_one_stage(self):
        for variant in stage_variants(BASELINE_CONFIG):
            differences = [
                stage for stage in ISP_STAGES
                if getattr(variant, stage) != getattr(BASELINE_CONFIG, stage)
            ]
            assert len(differences) == 1

    def test_variant_names_mention_stage(self):
        for variant in stage_variants(BASELINE_CONFIG):
            stage = variant.name.split(":")[0]
            assert stage in ISP_STAGES

    def test_variants_runnable(self):
        raw = make_raw(seed=4)
        for variant in stage_variants(BASELINE_CONFIG):
            out = ISPPipeline(variant).process(raw)
            assert out.shape == (16, 16, 3)
