"""Golden scalar-vs-batched equivalence for every ISP stage (Table 3).

The batched capture engine's hard guarantee: for every method of all six ISP
stages — and for the composed pipeline, the RAW path and the resize — the
batched ``(N, ...)`` kernel output is *bitwise* equal to running the per-image
scalar function on each batch member.  A second family of tests pins the
kernels to the legacy per-image formulations they replaced (``ndimage``'s
rank filter, ``np.histogram``/``np.interp``) so silent numeric drift in a
reimplementation cannot hide behind the shared-kernel equivalence.
"""

import numpy as np
import pytest
from scipy import ndimage

from repro.isp.compression import COMPRESSION_METHODS, compress, compress_batch
from repro.isp.demosaic import DEMOSAIC_METHODS, demosaic, demosaic_batch
from repro.isp.denoise import DENOISE_METHODS, denoise, denoise_batch
from repro.isp.filters import median_filter_3x3
from repro.isp.gamut import GAMUT_METHODS, gamut_map, gamut_map_batch
from repro.isp.pipeline import (
    BASELINE_CONFIG,
    OPTION1_CONFIG,
    OPTION2_CONFIG,
    ISPPipeline,
    stage_variants,
)
from repro.isp.raw import (
    BAYER_PATTERNS,
    RawBatch,
    bayer_mosaic,
    bayer_mosaic_batch,
    raw_to_training_array,
    raw_to_training_array_batch,
)
from repro.isp.resize import resize_bilinear, resize_bilinear_batch
from repro.isp.tone import TONE_METHODS, tone_transform, tone_transform_batch
from repro.isp.white_balance import WHITE_BALANCE_METHODS, white_balance, white_balance_batch


def make_batch(n=5, h=16, w=16, seed=0):
    return np.random.default_rng(seed).random((n, h, w, 3))


def make_raw_batch(n=5, h=16, w=16, seed=0, pattern="RGGB"):
    return RawBatch(bayer_mosaic_batch(make_batch(n, h, w, seed), pattern), pattern=pattern)


def assert_batch_equals_scalar(batch_out, scalar_fn, items):
    """Exact (bitwise) equality of the batched kernel vs the per-item loop."""
    for index, item in enumerate(items):
        np.testing.assert_array_equal(batch_out[index], scalar_fn(item))


class TestStageEquivalence:
    """Every method of every Table 3 stage: batched == scalar, bit for bit."""

    @pytest.mark.parametrize("method", sorted(DEMOSAIC_METHODS))
    def test_demosaic(self, method):
        raw = make_raw_batch(seed=1)
        out = demosaic_batch(raw, method)
        assert_batch_equals_scalar(out, lambda r: demosaic(r, method), list(raw))

    @pytest.mark.parametrize("method", sorted(DENOISE_METHODS))
    def test_denoise(self, method):
        batch = make_batch(seed=2)
        out = denoise_batch(batch, method)
        assert_batch_equals_scalar(out, lambda im: denoise(im, method), batch)

    @pytest.mark.parametrize("method", sorted(WHITE_BALANCE_METHODS))
    def test_white_balance(self, method):
        batch = make_batch(seed=3)
        out = white_balance_batch(batch, method)
        assert_batch_equals_scalar(out, lambda im: white_balance(im, method), batch)

    @pytest.mark.parametrize("method", sorted(GAMUT_METHODS))
    def test_gamut(self, method):
        batch = make_batch(seed=4)
        out = gamut_map_batch(batch, method)
        assert_batch_equals_scalar(out, lambda im: gamut_map(im, method), batch)

    @pytest.mark.parametrize("method", sorted(TONE_METHODS))
    def test_tone(self, method):
        batch = make_batch(seed=5)
        out = tone_transform_batch(batch, method)
        assert_batch_equals_scalar(out, lambda im: tone_transform(im, method), batch)

    @pytest.mark.parametrize("method", sorted(COMPRESSION_METHODS))
    def test_compression(self, method):
        batch = make_batch(n=4, h=20, w=12, seed=6)  # non-multiple-of-8 planes
        out = compress_batch(batch, method)
        assert_batch_equals_scalar(out, lambda im: compress(im, method), batch)


class TestPipelineEquivalence:
    @pytest.mark.parametrize("config", [BASELINE_CONFIG, OPTION1_CONFIG, OPTION2_CONFIG],
                             ids=lambda c: c.name)
    def test_table3_columns(self, config):
        raw = make_raw_batch(seed=7)
        pipeline = ISPPipeline(config)
        out = pipeline.process_batch(raw)
        assert_batch_equals_scalar(out, pipeline.process, list(raw))

    @pytest.mark.parametrize("config", stage_variants(), ids=lambda c: c.name)
    def test_all_stage_variants(self, config):
        """The full Fig. 3 substitution grid, end to end."""
        raw = make_raw_batch(seed=8)
        pipeline = ISPPipeline(config)
        out = pipeline.process_batch(raw)
        assert_batch_equals_scalar(out, pipeline.process, list(raw))

    @pytest.mark.parametrize("pattern", sorted(BAYER_PATTERNS))
    def test_raw_training_path(self, pattern):
        raw = make_raw_batch(seed=9, pattern=pattern)
        out = raw_to_training_array_batch(raw)
        assert_batch_equals_scalar(out, raw_to_training_array, list(raw))

    @pytest.mark.parametrize("pattern", sorted(BAYER_PATTERNS))
    def test_bayer_mosaic(self, pattern):
        batch = make_batch(seed=10)
        out = bayer_mosaic_batch(batch, pattern)
        assert_batch_equals_scalar(out, lambda im: bayer_mosaic(im, pattern), batch)

    @pytest.mark.parametrize("size", [(8, 8), (16, 16), (33, 17), (48, 48)])
    def test_resize(self, size):
        batch = make_batch(n=4, h=24, w=20, seed=11)
        out = resize_bilinear_batch(batch, size)
        assert out.shape == (4, size[0], size[1], 3)
        assert_batch_equals_scalar(out, lambda im: resize_bilinear(im, size), batch)

    def test_resize_same_size_returns_copy(self):
        batch = make_batch(n=2, h=8, w=8)
        out = resize_bilinear_batch(batch, (8, 8))
        np.testing.assert_array_equal(out, batch)
        out[0, 0, 0, 0] = -1.0
        assert batch[0, 0, 0, 0] != -1.0


class TestLegacyFormulations:
    """Pin reimplemented kernels to the library functions they replaced."""

    def test_median_network_matches_ndimage_rank_filter(self):
        rng = np.random.default_rng(12)
        planes = rng.random((6, 23, 17))
        expected = np.stack([ndimage.median_filter(p, size=3, mode="mirror") for p in planes])
        np.testing.assert_array_equal(median_filter_3x3(planes), expected)

    def test_median_network_with_ties(self):
        rng = np.random.default_rng(13)
        planes = np.round(rng.random((4, 16, 16)) * 4) / 4  # many duplicates
        expected = np.stack([ndimage.median_filter(p, size=3, mode="mirror") for p in planes])
        np.testing.assert_array_equal(median_filter_3x3(planes), expected)

    def test_rowwise_histogram_matches_np_histogram(self):
        from repro.isp.tone import _rowwise_histogram

        rng = np.random.default_rng(14)
        values = rng.random((5, 400))
        values[0, :5] = [0.0, 1.0, 0.5, 1.0 - 1e-12, 1e-12]  # bin-edge cases
        edges = np.linspace(0.0, 1.0, 65)
        ours = _rowwise_histogram(values, edges)
        for row, counts in zip(values, ours):
            expected, _ = np.histogram(row, bins=64, range=(0.0, 1.0))
            np.testing.assert_array_equal(counts, expected)

    def test_rowwise_interp_matches_np_interp(self):
        from repro.isp.tone import _rowwise_interp

        rng = np.random.default_rng(15)
        edges = np.linspace(0.0, 1.0, 65)
        xp = edges[:-1]
        fp = np.sort(rng.random((3, 64)), axis=1)
        x = rng.random((3, 500))
        x[0, :4] = [0.0, xp[3], xp[-1], 1.0]  # exact hits and out-of-range
        ours = _rowwise_interp(x, xp, fp)
        for row_x, row_fp, row_out in zip(x, fp, ours):
            np.testing.assert_array_equal(row_out, np.interp(row_x, xp, row_fp))

    def test_resize_reassociation_is_intentional(self):
        """The shared resize uses a separable rows-then-columns lerp; the
        deleted per-image implementations blended the four corners columns-
        first.  The reassociation is algebraically the same bilinear weights
        (agreement to ~1 ulp) but NOT bitwise — an intentional drift, noted
        in CHANGES.md, that contributes (with the train/test seed fix) to the
        regenerated benchmark realizations."""
        batch = make_batch(n=3, h=24, w=20, seed=17)
        size = (16, 16)
        h, w = batch.shape[1:3]
        row_pos = np.linspace(0, h - 1, size[0])
        col_pos = np.linspace(0, w - 1, size[1])
        row_lo = np.floor(row_pos).astype(int)
        col_lo = np.floor(col_pos).astype(int)
        row_hi = np.minimum(row_lo + 1, h - 1)
        col_hi = np.minimum(col_lo + 1, w - 1)
        row_frac = (row_pos - row_lo)[:, None, None]
        col_frac = (col_pos - col_lo)[None, :, None]
        legacy = np.stack([
            (image[row_lo][:, col_lo] * (1 - col_frac) + image[row_lo][:, col_hi] * col_frac)
            * (1 - row_frac)
            + (image[row_hi][:, col_lo] * (1 - col_frac) + image[row_hi][:, col_hi] * col_frac)
            * row_frac
            for image in batch
        ])
        np.testing.assert_allclose(resize_bilinear_batch(batch, size), legacy,
                                   rtol=0.0, atol=1e-12)

    def test_equalize_matches_legacy_np_interp_formulation(self):
        """The full equalize kernel against the seed's np.histogram/np.interp code."""
        from repro.isp.tone import srgb_gamma, tone_equalize

        rng = np.random.default_rng(16)
        image = rng.random((16, 16, 3)) * 0.4

        encoded = srgb_gamma(image)
        luminance = encoded.mean(axis=-1)
        hist, bin_edges = np.histogram(luminance, bins=64, range=(0.0, 1.0))
        cdf = np.cumsum(hist).astype(np.float64)
        cdf /= cdf[-1]
        equalized_lum = np.interp(luminance, bin_edges[:-1], cdf)
        ratio = equalized_lum / np.maximum(luminance, 1e-6)
        legacy = np.clip(encoded * ratio[..., None], 0.0, 1.0)

        np.testing.assert_array_equal(tone_equalize(image), legacy)


class TestBatchValidation:
    def test_raw_batch_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            RawBatch(np.zeros((4, 4)))

    def test_raw_batch_rejects_odd_dims(self):
        with pytest.raises(ValueError):
            RawBatch(np.zeros((2, 5, 4)))

    def test_raw_batch_round_trip_to_images(self):
        raw = make_raw_batch(n=3)
        assert len(raw) == 3
        single = raw[1]
        np.testing.assert_array_equal(single.mosaic, raw.mosaics[1])
        np.testing.assert_array_equal(single.as_batch().mosaics[0], raw.mosaics[1])

    @pytest.mark.parametrize("dispatch", [denoise_batch, white_balance_batch, gamut_map_batch,
                                          tone_transform_batch, compress_batch])
    def test_image_stage_batches_reject_single_images(self, dispatch):
        with pytest.raises(ValueError):
            dispatch(np.zeros((8, 8, 3)))

    @pytest.mark.parametrize("dispatch", [denoise_batch, white_balance_batch, gamut_map_batch,
                                          tone_transform_batch, compress_batch])
    def test_unknown_method_raises(self, dispatch):
        with pytest.raises(ValueError):
            dispatch(make_batch(n=2), "no_such_method")

    def test_unknown_demosaic_method_raises(self):
        with pytest.raises(ValueError):
            demosaic_batch(make_raw_batch(n=2), "no_such_method")

    def test_channel_masks_consistent_with_raw_image(self):
        raw = make_raw_batch(n=2, pattern="GBRG")
        for channel in "RGB":
            np.testing.assert_array_equal(raw.channel_mask(channel),
                                          raw[0].channel_mask(channel))
