"""Tests for the individual ISP stages: demosaic, denoise, WB, gamut, tone, compression."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isp.compression import COMPRESSION_METHODS, compress, jpeg_compress, quality_to_quant_table
from repro.isp.demosaic import DEMOSAIC_METHODS, demosaic
from repro.isp.denoise import DENOISE_METHODS, denoise
from repro.isp.gamut import GAMUT_METHODS, gamut_map
from repro.isp.raw import RawImage, bayer_mosaic
from repro.isp.tone import TONE_METHODS, apply_gamma, srgb_gamma, srgb_gamma_inverse, tone_transform
from repro.isp.white_balance import WHITE_BALANCE_METHODS, apply_gains, white_balance


def make_image(h=16, w=16, seed=0):
    return np.random.default_rng(seed).random((h, w, 3))


def make_raw(h=16, w=16, seed=0):
    return RawImage(bayer_mosaic(make_image(h, w, seed)))


class TestDemosaic:
    @pytest.mark.parametrize("method", sorted(DEMOSAIC_METHODS))
    def test_output_shape_and_range(self, method):
        out = demosaic(make_raw(), method)
        assert out.shape == (16, 16, 3)
        assert out.min() >= 0.0 and out.max() <= 1.0

    @pytest.mark.parametrize("method", sorted(DEMOSAIC_METHODS))
    def test_constant_scene_reconstructed_exactly(self, method):
        rgb = np.full((16, 16, 3), 0.4)
        out = demosaic(RawImage(bayer_mosaic(rgb)), method)
        np.testing.assert_allclose(out, 0.4, atol=1e-8)

    def test_methods_differ_on_textured_scene(self):
        raw = make_raw(seed=3)
        results = {m: demosaic(raw, m) for m in DEMOSAIC_METHODS}
        assert not np.allclose(results["ppg"], results["binning"])
        assert not np.allclose(results["ppg"], results["ahd"]) or not np.allclose(
            results["binning"], results["ahd"]
        )

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            demosaic(make_raw(), "magic")

    def test_binning_reduces_detail(self):
        """Binning collapses 2x2 tiles, so its output has lower spatial variance."""
        raw = make_raw(seed=5)
        fine = demosaic(raw, "ppg")
        binned = demosaic(raw, "binning")
        # Binned output repeats each value in 2x2 blocks.
        assert np.allclose(binned[0::2, 0::2], binned[1::2, 1::2], atol=1e-9) or (
            np.var(binned) <= np.var(fine) + 1e-6
        )


class TestDenoise:
    @pytest.mark.parametrize("method", sorted(DENOISE_METHODS))
    def test_shape_and_range(self, method):
        out = denoise(make_image(), method)
        assert out.shape == (16, 16, 3)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_none_is_identity(self):
        image = make_image()
        np.testing.assert_allclose(denoise(image, "none"), image)

    def test_fbdd_reduces_impulse_noise(self):
        clean = np.full((16, 16, 3), 0.5)
        noisy = clean.copy()
        noisy[4, 4] = 1.0  # impulse
        out = denoise(noisy, "fbdd")
        assert abs(out[4, 4] - 0.5).max() < abs(noisy[4, 4] - 0.5).max()

    def test_wavelet_reduces_gaussian_noise(self):
        rng = np.random.default_rng(0)
        clean = np.full((32, 32, 3), 0.5)
        noisy = np.clip(clean + rng.normal(0, 0.1, clean.shape), 0, 1)
        out = denoise(noisy, "wavelet_bayes")
        assert np.mean((out - clean) ** 2) < np.mean((noisy - clean) ** 2)

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            denoise(make_image(), "nlmeans")


class TestWhiteBalance:
    @pytest.mark.parametrize("method", sorted(WHITE_BALANCE_METHODS))
    def test_shape_and_range(self, method):
        out = white_balance(make_image(), method)
        assert out.shape == (16, 16, 3)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_gray_world_balances_channel_means(self):
        rng = np.random.default_rng(0)
        image = rng.random((32, 32, 3)) * np.array([0.9, 0.5, 0.3])
        out = white_balance(image, "gray_world")
        means = out.reshape(-1, 3).mean(axis=0)
        assert means.std() < image.reshape(-1, 3).mean(axis=0).std()

    def test_white_patch_maps_maxima_near_one(self):
        image = make_image() * 0.5
        out = white_balance(image, "white_patch")
        maxima = np.percentile(out.reshape(-1, 3), 99, axis=0)
        assert (maxima > 0.9).all()

    def test_none_is_identity(self):
        image = make_image()
        np.testing.assert_allclose(white_balance(image, "none"), image)

    def test_apply_gains(self):
        image = np.full((4, 4, 3), 0.5)
        out = apply_gains(image, (2.0, 1.0, 0.5))
        np.testing.assert_allclose(out[..., 0], 1.0)
        np.testing.assert_allclose(out[..., 1], 0.5)
        np.testing.assert_allclose(out[..., 2], 0.25)

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            white_balance(make_image(), "magic")


class TestGamut:
    @pytest.mark.parametrize("method", sorted(GAMUT_METHODS))
    def test_shape_and_range(self, method):
        out = gamut_map(make_image(), method)
        assert out.shape == (16, 16, 3)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_none_is_identity(self):
        image = make_image()
        np.testing.assert_allclose(gamut_map(image, "none"), image)

    def test_srgb_near_identity_for_in_gamut_colors(self):
        image = make_image() * 0.5 + 0.25  # well inside the gamut
        out = gamut_map(image, "srgb")
        assert np.abs(out - image).mean() < 0.05

    def test_prophoto_differs_from_srgb(self):
        image = make_image(seed=2)
        assert not np.allclose(gamut_map(image, "srgb"), gamut_map(image, "prophoto"))

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            gamut_map(make_image(), "adobe")


class TestTone:
    @pytest.mark.parametrize("method", sorted(TONE_METHODS))
    def test_shape_and_range(self, method):
        out = tone_transform(make_image(), method)
        assert out.shape == (16, 16, 3)
        assert out.min() >= 0.0 and out.max() <= 1.0 + 1e-9

    def test_srgb_gamma_monotonic(self):
        x = np.linspace(0, 1, 100).reshape(10, 10, 1).repeat(3, axis=2)
        out = srgb_gamma(x)
        flat = out[..., 0].reshape(-1)
        assert (np.diff(np.sort(flat)) >= -1e-12).all()

    def test_srgb_gamma_brightens_midtones(self):
        assert srgb_gamma(np.array([[[0.2, 0.2, 0.2]]]))[0, 0, 0] > 0.2

    def test_gamma_inverse_round_trip(self):
        image = make_image()
        np.testing.assert_allclose(srgb_gamma_inverse(srgb_gamma(image)), image, atol=1e-9)

    def test_apply_gamma_identity_at_one(self):
        image = make_image()
        np.testing.assert_allclose(apply_gamma(image, 1.0), image)

    def test_apply_gamma_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            apply_gamma(make_image(), 0.0)

    def test_equalize_differs_from_plain_gamma(self):
        image = make_image(seed=7) * 0.3  # low-contrast image
        assert not np.allclose(tone_transform(image, "srgb_gamma"),
                               tone_transform(image, "srgb_gamma_equalize"))

    def test_none_is_identity(self):
        image = make_image()
        np.testing.assert_allclose(tone_transform(image, "none"), image)


class TestCompression:
    @pytest.mark.parametrize("method", sorted(COMPRESSION_METHODS))
    def test_shape_and_range(self, method):
        out = compress(make_image(), method)
        assert out.shape == (16, 16, 3)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_none_is_identity(self):
        image = make_image()
        np.testing.assert_allclose(compress(image, "none"), image)

    def test_lower_quality_more_distortion(self):
        image = make_image(32, 32, seed=1)
        err85 = np.mean((jpeg_compress(image, 85) - image) ** 2)
        err50 = np.mean((jpeg_compress(image, 50) - image) ** 2)
        err10 = np.mean((jpeg_compress(image, 10) - image) ** 2)
        assert err50 >= err85
        assert err10 > err85

    def test_smooth_image_survives_compression(self):
        image = np.full((16, 16, 3), 0.5)
        out = jpeg_compress(image, 85)
        assert np.abs(out - image).max() < 0.05

    def test_quant_table_monotone_in_quality(self):
        assert quality_to_quant_table(10).mean() > quality_to_quant_table(90).mean()

    def test_quality_bounds(self):
        with pytest.raises(ValueError):
            quality_to_quant_table(0)
        with pytest.raises(ValueError):
            quality_to_quant_table(101)

    def test_non_multiple_of_8_shapes(self):
        image = make_image(20, 12)
        out = jpeg_compress(image, 85)
        assert out.shape == image.shape

    @given(st.integers(1, 100))
    @settings(max_examples=20, deadline=None)
    def test_any_quality_stays_in_range(self, quality):
        out = jpeg_compress(make_image(16, 16, seed=quality), quality)
        assert out.min() >= 0.0 and out.max() <= 1.0
