"""Tests for RAW / Bayer mosaic handling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isp.raw import BAYER_PATTERNS, RawImage, bayer_mosaic, raw_to_training_array


def make_rgb(h=8, w=8, seed=0):
    return np.random.default_rng(seed).random((h, w, 3))


class TestBayerMosaic:
    def test_shape_preserved(self):
        rgb = make_rgb(8, 10)
        assert bayer_mosaic(rgb).shape == (8, 10)

    def test_rggb_sites_pick_correct_channels(self):
        rgb = np.zeros((4, 4, 3))
        rgb[..., 0] = 1.0  # red everywhere
        rgb[..., 1] = 2.0  # green everywhere
        rgb[..., 2] = 3.0  # blue everywhere
        mosaic = bayer_mosaic(rgb, pattern="RGGB")
        assert mosaic[0, 0] == 1.0  # R site
        assert mosaic[0, 1] == 2.0  # G site
        assert mosaic[1, 0] == 2.0  # G site
        assert mosaic[1, 1] == 3.0  # B site

    @pytest.mark.parametrize("pattern", sorted(BAYER_PATTERNS))
    def test_all_patterns_supported(self, pattern):
        mosaic = bayer_mosaic(make_rgb(), pattern=pattern)
        assert mosaic.shape == (8, 8)

    def test_unknown_pattern_raises(self):
        with pytest.raises(ValueError):
            bayer_mosaic(make_rgb(), pattern="XYZW")

    def test_odd_dimensions_rejected(self):
        with pytest.raises(ValueError):
            bayer_mosaic(np.zeros((5, 4, 3)))

    def test_non_rgb_rejected(self):
        with pytest.raises(ValueError):
            bayer_mosaic(np.zeros((4, 4, 4)))

    @given(st.integers(2, 8))
    @settings(max_examples=10, deadline=None)
    def test_values_come_from_input(self, half_size):
        size = half_size * 2
        rgb = make_rgb(size, size, seed=half_size)
        mosaic = bayer_mosaic(rgb)
        assert mosaic.min() >= rgb.min() - 1e-12
        assert mosaic.max() <= rgb.max() + 1e-12


class TestRawImage:
    def test_valid_construction(self):
        raw = RawImage(np.zeros((4, 4)))
        assert raw.shape == (4, 4)

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            RawImage(np.zeros((4, 4, 3)))

    def test_rejects_odd_dims(self):
        with pytest.raises(ValueError):
            RawImage(np.zeros((3, 4)))

    def test_rejects_unknown_pattern(self):
        with pytest.raises(ValueError):
            RawImage(np.zeros((4, 4)), pattern="ABCD")

    def test_channel_mask_partition(self):
        """R, G and B masks tile the sensor exactly once."""
        raw = RawImage(np.zeros((6, 6)))
        total = (raw.channel_mask("R").astype(int) + raw.channel_mask("G").astype(int)
                 + raw.channel_mask("B").astype(int))
        np.testing.assert_array_equal(total, np.ones((6, 6), dtype=int))

    def test_green_mask_has_double_density(self):
        raw = RawImage(np.zeros((8, 8)))
        assert raw.channel_mask("G").sum() == 2 * raw.channel_mask("R").sum()


class TestRawToTrainingArray:
    def test_half_resolution_planes(self):
        raw = RawImage(bayer_mosaic(make_rgb(8, 8)))
        out = raw_to_training_array(raw)
        assert out.shape == (4, 4, 3)

    def test_constant_image_preserved(self):
        rgb = np.full((8, 8, 3), 0.5)
        raw = RawImage(bayer_mosaic(rgb))
        out = raw_to_training_array(raw)
        np.testing.assert_allclose(out, 0.5)

    def test_channels_track_scene_channels(self):
        rgb = np.zeros((8, 8, 3))
        rgb[..., 0] = 0.9  # strong red scene
        out = raw_to_training_array(RawImage(bayer_mosaic(rgb)))
        assert out[..., 0].mean() > out[..., 2].mean()
