"""Tests for the persistent capture cache (round-trip, keys, invalidation)."""

import numpy as np
import pytest

from repro.data.capture import (
    CaptureConfig,
    build_device_datasets,
    derive_capture_seeds,
)
from repro.data.capture_cache import CaptureCache, device_fingerprint
from repro.data.dataset import ArrayDataset
from repro.devices.profiles import get_device
from repro.isp.pipeline import BASELINE_CONFIG, OPTION2_CONFIG

BUILD_KW = dict(samples_per_class_train=2, samples_per_class_test=1, num_classes=3,
                image_size=16, scene_size=32, devices=["Pixel5", "S6"], seed=0)


def make_key(**overrides):
    fields = dict(scene_seed=0, samples_per_class=2, num_classes=3, scene_size=32,
                  device=get_device("Pixel5"),
                  config=CaptureConfig(image_size=16, seed=7))
    fields.update(overrides)
    return CaptureCache.capture_key(**fields)


class TestCaptureKey:
    def test_deterministic(self):
        assert make_key() == make_key()

    @pytest.mark.parametrize("field, value", [
        ("scene_seed", 1),
        ("samples_per_class", 3),
        ("num_classes", 4),
        ("scene_size", 64),
    ])
    def test_scene_pool_fields_change_key(self, field, value):
        assert make_key(**{field: value}) != make_key()

    @pytest.mark.parametrize("config", [
        CaptureConfig(image_size=32, seed=7),
        CaptureConfig(image_size=16, seed=8),
        CaptureConfig(image_size=16, raw=True, seed=7),
        CaptureConfig(image_size=16, isp_override=BASELINE_CONFIG, seed=7),
        CaptureConfig(image_size=16, isp_override=OPTION2_CONFIG, seed=7),
    ])
    def test_capture_config_fields_change_key(self, config):
        assert make_key(config=config) != make_key()

    def test_device_changes_key(self):
        assert make_key(device=get_device("S22")) != make_key()

    def test_fingerprint_covers_sensor_and_isp(self):
        fp = device_fingerprint(get_device("S22"))
        assert fp["sensor"]["resolution"] == [64, 64]
        assert fp["isp"]["denoise"] == "wavelet_bayes"
        assert len(fp["sensor"]["color_response"]) == 3


class TestCacheStorage:
    def test_round_trip_bitwise(self, tmp_path):
        cache = CaptureCache(tmp_path)
        rng = np.random.default_rng(0)
        dataset = ArrayDataset(rng.random((4, 3, 8, 8)), np.array([0, 1, 2, 0]),
                               metadata={"device": "Pixel5", "raw": False})
        key = make_key()
        cache.store(key, dataset)
        loaded = cache.load(key)
        np.testing.assert_array_equal(loaded.features, dataset.features)
        np.testing.assert_array_equal(loaded.labels, dataset.labels)
        assert loaded.labels.dtype == dataset.labels.dtype
        assert loaded.metadata == dataset.metadata

    def test_load_missing_returns_none(self, tmp_path):
        assert CaptureCache(tmp_path).load(make_key()) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = CaptureCache(tmp_path)
        path = cache.path_for(make_key())
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not a checkpoint")
        assert cache.load(make_key()) is None

    def test_get_or_build_counts_hits_and_misses(self, tmp_path):
        cache = CaptureCache(tmp_path)
        dataset = ArrayDataset(np.zeros((2, 1, 4, 4)), np.array([0, 1]))
        built = []

        def builder():
            built.append(True)
            return dataset

        key = make_key()
        cache.get_or_build(key, builder)
        cache.get_or_build(key, builder)
        assert len(built) == 1
        assert cache.stats == {"hits": 1, "misses": 1, "entries": 1}


class TestBuildWithCache:
    def test_hit_returns_bitwise_equal_bundle(self, tmp_path):
        reference = build_device_datasets(**BUILD_KW)
        cache = CaptureCache(tmp_path)
        first = build_device_datasets(cache=cache, **BUILD_KW)
        second = build_device_datasets(cache=cache, **BUILD_KW)
        assert cache.misses == 4 and cache.hits == 4
        for name in reference.train:
            for split in ("train", "test"):
                ref = getattr(reference, split)[name]
                miss = getattr(first, split)[name]
                hit = getattr(second, split)[name]
                np.testing.assert_array_equal(ref.features, miss.features)
                np.testing.assert_array_equal(miss.features, hit.features)
                np.testing.assert_array_equal(miss.labels, hit.labels)
                assert miss.metadata == hit.metadata

    def test_cache_accepts_path_string(self, tmp_path):
        first = build_device_datasets(cache=str(tmp_path), **BUILD_KW)
        second = build_device_datasets(cache=str(tmp_path), **BUILD_KW)
        np.testing.assert_array_equal(first.train["Pixel5"].features,
                                      second.train["Pixel5"].features)
        assert len(list(tmp_path.glob("*.npz"))) == 4

    def test_full_hit_skips_scene_generation(self, tmp_path, monkeypatch):
        cache = CaptureCache(tmp_path)
        build_device_datasets(cache=cache, **BUILD_KW)

        def boom(*args, **kwargs):  # pragma: no cover - should never run
            raise AssertionError("scene generation ran on a fully cached build")

        monkeypatch.setattr("repro.data.capture.generate_scene_dataset", boom)
        bundle = build_device_datasets(cache=cache, **BUILD_KW)
        assert set(bundle.train) == {"Pixel5", "S6"}

    def test_different_seed_misses(self, tmp_path):
        cache = CaptureCache(tmp_path)
        build_device_datasets(cache=cache, **BUILD_KW)
        build_device_datasets(cache=cache, **{**BUILD_KW, "seed": 1})
        assert cache.misses == 8

    def test_raw_flag_misses(self, tmp_path):
        cache = CaptureCache(tmp_path)
        build_device_datasets(cache=cache, **BUILD_KW)
        build_device_datasets(cache=cache, raw=True, **BUILD_KW)
        assert cache.misses == 8 and cache.hits == 0


class TestSeedDerivation:
    def test_train_test_seeds_differ(self):
        train_seed, test_seed = derive_capture_seeds(0, 0)
        assert train_seed != test_seed

    def test_deterministic(self):
        assert derive_capture_seeds(3, 2) == derive_capture_seeds(3, 2)

    def test_devices_get_distinct_streams(self):
        assert derive_capture_seeds(0, 0) != derive_capture_seeds(0, 1)

    def test_train_noise_not_replayed_on_test(self):
        """Regression: one CaptureConfig seed for both splits replayed the
        train sensor-noise stream sample-for-sample on the test captures.
        Capturing the *same* scenes under the derived train and test seeds
        must now produce different noise realisations."""
        from repro.data.capture import capture_with_device
        from repro.data.scenes import generate_scene_dataset

        device = get_device("Pixel5")
        scenes, labels = generate_scene_dataset(2, num_classes=2, image_size=32, seed=0)
        train_seed, test_seed = derive_capture_seeds(0, 0)
        train = capture_with_device(scenes, labels, device,
                                    CaptureConfig(image_size=16, seed=train_seed))
        test = capture_with_device(scenes, labels, device,
                                   CaptureConfig(image_size=16, seed=test_seed))
        assert not np.allclose(train.features, test.features)
