"""Tests for the synthetic CIFAR, FLAIR-like and ECG datasets."""

import numpy as np
import pytest

from repro.data.cifar_synthetic import SyntheticCifarConfig, build_synthetic_cifar, generate_base_images
from repro.data.ecg import ECG_SENSOR_TYPES, build_ecg_datasets, synthesize_ecg_window
from repro.data.flair_synthetic import FlairConfig, build_flair_dataset


class TestSyntheticCifar:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            SyntheticCifarConfig(num_classes=1)
        with pytest.raises(ValueError):
            SyntheticCifarConfig(image_size=4)
        with pytest.raises(ValueError):
            SyntheticCifarConfig(num_device_types=0)

    def test_base_images_shapes(self):
        images, labels = generate_base_images(30, num_classes=5, image_size=16, seed=0)
        assert images.shape == (30, 16, 16, 3)
        assert labels.shape == (30,)
        assert labels.max() < 5
        assert images.min() >= 0.0 and images.max() <= 1.0

    def test_base_images_deterministic(self):
        a, _ = generate_base_images(10, 4, 16, seed=3)
        b, _ = generate_base_images(10, 4, 16, seed=3)
        np.testing.assert_allclose(a, b)

    def test_per_device_datasets(self):
        config = SyntheticCifarConfig(num_classes=5, samples_per_class_train=3,
                                      samples_per_class_test=2, image_size=16,
                                      num_device_types=4, seed=0)
        train, test, devices = build_synthetic_cifar(config)
        assert len(train) == 4 and len(test) == 4
        assert len(devices) == 4
        first = devices[0].name
        assert train[first].features.shape == (15, 3, 16, 16)
        assert test[first].features.shape == (10, 3, 16, 16)

    def test_same_labels_across_device_types(self):
        config = SyntheticCifarConfig(num_classes=4, samples_per_class_train=3,
                                      samples_per_class_test=2, image_size=16,
                                      num_device_types=3, seed=0)
        train, _, devices = build_synthetic_cifar(config)
        labels = [train[d.name].labels for d in devices]
        np.testing.assert_array_equal(labels[0], labels[1])
        np.testing.assert_array_equal(labels[1], labels[2])

    def test_device_types_perturb_images_differently(self):
        config = SyntheticCifarConfig(num_classes=4, samples_per_class_train=3,
                                      samples_per_class_test=2, image_size=16,
                                      num_device_types=3, seed=0)
        train, _, devices = build_synthetic_cifar(config)
        a = train[devices[0].name].features
        b = train[devices[1].name].features
        assert not np.allclose(a, b)


class TestFlairSynthetic:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            FlairConfig(num_labels=1)
        with pytest.raises(ValueError):
            FlairConfig(num_device_types=1)
        with pytest.raises(ValueError):
            FlairConfig(avg_labels_per_image=100)

    def test_multilabel_targets(self):
        config = FlairConfig(num_labels=5, num_device_types=3, samples_per_device_train=8,
                             samples_per_device_test=4, image_size=16, seed=0)
        train, test, devices = build_flair_dataset(config)
        assert len(devices) == 3
        labels = train[devices[0].name].labels
        assert labels.shape == (8, 5)
        assert set(np.unique(labels)) <= {0.0, 1.0}

    def test_every_image_has_a_label(self):
        config = FlairConfig(num_labels=4, num_device_types=3, samples_per_device_train=10,
                             samples_per_device_test=5, image_size=16, seed=1)
        train, _, devices = build_flair_dataset(config)
        for device in devices:
            assert (train[device.name].labels.sum(axis=1) >= 1).all()

    def test_image_layout_and_range(self):
        config = FlairConfig(num_labels=4, num_device_types=2, samples_per_device_train=5,
                             samples_per_device_test=3, image_size=16, seed=0)
        train, _, devices = build_flair_dataset(config)
        features = train[devices[0].name].features
        assert features.shape == (5, 3, 16, 16)
        assert features.min() >= 0.0 and features.max() <= 1.0

    def test_device_metadata(self):
        config = FlairConfig(num_labels=4, num_device_types=2, samples_per_device_train=5,
                             samples_per_device_test=3, image_size=16, seed=0)
        train, _, devices = build_flair_dataset(config)
        assert train[devices[0].name].metadata["kind"] == "flair-synthetic"


class TestECG:
    def test_four_sensor_types(self):
        assert len(ECG_SENSOR_TYPES) == 4
        assert len({s.name for s in ECG_SENSOR_TYPES}) == 4

    def test_window_synthesis(self):
        window = synthesize_ecg_window(75.0, window_size=128, rng=np.random.default_rng(0))
        assert window.shape == (128,)
        assert np.isfinite(window).all()

    def test_heart_rate_bounds(self):
        with pytest.raises(ValueError):
            synthesize_ecg_window(10.0)
        with pytest.raises(ValueError):
            synthesize_ecg_window(300.0)

    def test_higher_rate_more_peaks(self):
        rng = np.random.default_rng(0)
        slow = synthesize_ecg_window(50.0, window_size=256, rng=rng)
        fast = synthesize_ecg_window(150.0, window_size=256, rng=rng)
        # Count prominent peaks via a simple threshold crossing of the QRS amplitude.
        def peaks(signal):
            above = signal > 0.6
            return int(np.sum(np.diff(above.astype(int)) == 1))
        assert peaks(fast) > peaks(slow)

    def test_sensor_corruption_changes_signal(self):
        clean = synthesize_ecg_window(80.0, rng=np.random.default_rng(0))
        wrist = ECG_SENSOR_TYPES[2]
        corrupted = wrist.apply(clean, np.random.default_rng(1))
        assert not np.allclose(corrupted, clean)

    def test_sensors_differ_from_each_other(self):
        clean = synthesize_ecg_window(80.0, rng=np.random.default_rng(0))
        outputs = [s.apply(clean, np.random.default_rng(5)) for s in ECG_SENSOR_TYPES]
        for i in range(len(outputs)):
            for j in range(i + 1, len(outputs)):
                assert not np.allclose(outputs[i], outputs[j])

    def test_dataset_structure(self):
        train, test, sensors = build_ecg_datasets(samples_per_sensor_train=10,
                                                  samples_per_sensor_test=5,
                                                  window_size=64, seed=0)
        assert set(train) == {s.name for s in sensors}
        assert train["clinical"].features.shape == (10, 64)
        assert train["clinical"].labels.shape == (10, 1)
        labels = train["clinical"].labels
        assert labels.min() >= 0.0 and labels.max() <= 1.0

    def test_invalid_heart_rate_range(self):
        with pytest.raises(ValueError):
            build_ecg_datasets(heart_rate_range=(150.0, 50.0))
