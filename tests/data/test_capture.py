"""Tests for the device capture simulation (scene -> RAW -> ISP -> tensor)."""

import numpy as np
import pytest

from repro.data.capture import (
    CaptureConfig,
    build_device_datasets,
    capture_with_device,
    capture_with_device_scalar,
)
from repro.data.scenes import generate_scene_dataset
from repro.devices.profiles import DEVICE_PROFILES, get_device
from repro.isp.pipeline import BASELINE_CONFIG, OPTION2_CONFIG


@pytest.fixture(scope="module")
def scenes_and_labels():
    return generate_scene_dataset(2, num_classes=3, image_size=32, seed=0)


class TestCaptureWithDevice:
    def test_output_layout(self, scenes_and_labels):
        scenes, labels = scenes_and_labels
        dataset = capture_with_device(scenes, labels, get_device("Pixel5"),
                                      CaptureConfig(image_size=16, seed=0))
        assert dataset.features.shape == (len(scenes), 3, 16, 16)
        np.testing.assert_array_equal(dataset.labels, labels)

    def test_value_range(self, scenes_and_labels):
        scenes, labels = scenes_and_labels
        dataset = capture_with_device(scenes, labels, get_device("S6"),
                                      CaptureConfig(image_size=16, seed=0))
        assert dataset.features.min() >= 0.0 and dataset.features.max() <= 1.0

    def test_metadata_populated(self, scenes_and_labels):
        scenes, labels = scenes_and_labels
        dataset = capture_with_device(scenes, labels, get_device("G7"),
                                      CaptureConfig(image_size=16, seed=0))
        assert dataset.metadata["device"] == "G7"
        assert dataset.metadata["vendor"] == "lg"
        assert dataset.metadata["raw"] is False

    def test_raw_mode(self, scenes_and_labels):
        scenes, labels = scenes_and_labels
        dataset = capture_with_device(scenes, labels, get_device("Pixel5"),
                                      CaptureConfig(image_size=16, raw=True, seed=0))
        assert dataset.metadata["isp"] == "raw"
        assert dataset.features.shape == (len(scenes), 3, 16, 16)

    def test_raw_differs_from_processed(self, scenes_and_labels):
        scenes, labels = scenes_and_labels
        device = get_device("Pixel5")
        raw = capture_with_device(scenes, labels, device, CaptureConfig(16, raw=True, seed=0))
        processed = capture_with_device(scenes, labels, device, CaptureConfig(16, seed=0))
        assert not np.allclose(raw.features, processed.features)

    def test_different_devices_produce_different_images(self, scenes_and_labels):
        """The core system-induced heterogeneity mechanism: same scene, different tensors."""
        scenes, labels = scenes_and_labels
        a = capture_with_device(scenes, labels, get_device("Pixel5"), CaptureConfig(16, seed=0))
        b = capture_with_device(scenes, labels, get_device("S22"), CaptureConfig(16, seed=0))
        assert np.abs(a.features - b.features).mean() > 0.01

    def test_same_vendor_devices_more_similar(self, scenes_and_labels):
        """Pixel5 vs Pixel2 captures are closer than Pixel5 vs S22 (Table 2 structure)."""
        scenes, labels = scenes_and_labels
        cfg = CaptureConfig(16, seed=0)
        pixel5 = capture_with_device(scenes, labels, get_device("Pixel5"), cfg).features
        pixel2 = capture_with_device(scenes, labels, get_device("Pixel2"), cfg).features
        s22 = capture_with_device(scenes, labels, get_device("S22"), cfg).features
        same_vendor_gap = np.abs(pixel5 - pixel2).mean()
        cross_vendor_gap = np.abs(pixel5 - s22).mean()
        assert same_vendor_gap < cross_vendor_gap

    def test_isp_override(self, scenes_and_labels):
        scenes, labels = scenes_and_labels
        dataset = capture_with_device(
            scenes, labels, get_device("S6"),
            CaptureConfig(image_size=16, isp_override=BASELINE_CONFIG, seed=0),
        )
        assert dataset.metadata["isp"] == "baseline"

    def test_rejects_bad_scene_shape(self):
        with pytest.raises(ValueError):
            capture_with_device(np.zeros((2, 8, 8)), np.zeros(2), get_device("S6"))

    def test_rejects_mismatched_labels(self, scenes_and_labels):
        scenes, _ = scenes_and_labels
        with pytest.raises(ValueError):
            capture_with_device(scenes, np.zeros(1), get_device("S6"))


class TestBatchedScalarEquivalence:
    """The tentpole guarantee: batched capture == per-scene loop, bitwise."""

    @pytest.mark.parametrize("device", sorted(DEVICE_PROFILES))
    def test_every_device_isp(self, device, scenes_and_labels):
        scenes, labels = scenes_and_labels
        cfg = CaptureConfig(image_size=16, seed=11)
        batched = capture_with_device(scenes, labels, get_device(device), cfg)
        scalar = capture_with_device_scalar(scenes, labels, get_device(device), cfg)
        np.testing.assert_array_equal(batched.features, scalar.features)
        np.testing.assert_array_equal(batched.labels, scalar.labels)
        assert batched.metadata == scalar.metadata

    @pytest.mark.parametrize("device", ["Pixel5", "S22", "S6"])
    def test_raw_path(self, device, scenes_and_labels):
        scenes, labels = scenes_and_labels
        cfg = CaptureConfig(image_size=16, raw=True, seed=12)
        batched = capture_with_device(scenes, labels, get_device(device), cfg)
        scalar = capture_with_device_scalar(scenes, labels, get_device(device), cfg)
        np.testing.assert_array_equal(batched.features, scalar.features)

    def test_isp_override(self, scenes_and_labels):
        scenes, labels = scenes_and_labels
        cfg = CaptureConfig(image_size=16, isp_override=OPTION2_CONFIG, seed=13)
        batched = capture_with_device(scenes, labels, get_device("G4"), cfg)
        scalar = capture_with_device_scalar(scenes, labels, get_device("G4"), cfg)
        np.testing.assert_array_equal(batched.features, scalar.features)

    def test_rng_stream_matches_legacy_per_scene_draws(self, scenes_and_labels):
        """The batched noise block must consume the generator exactly like the
        legacy loop: per scene, a shot-noise draw then a read-noise draw."""
        scenes, _ = scenes_and_labels
        sensor = get_device("S9").sensor
        rng_legacy = np.random.default_rng(99)
        legacy_mosaics = []
        for scene in scenes:
            irradiance = sensor.expose(scene)
            shot_sigma = np.sqrt(np.maximum(irradiance, 0.0)) * sensor.shot_noise_scale
            noisy = irradiance + rng_legacy.normal(0.0, 1.0, size=irradiance.shape) * shot_sigma
            noisy = noisy + rng_legacy.normal(0.0, sensor.read_noise, size=irradiance.shape)
            noisy = np.clip(noisy, 0.0, 1.0)
            from repro.isp.raw import bayer_mosaic
            legacy_mosaics.append(bayer_mosaic(noisy, pattern=sensor.bayer_pattern))
        batched = sensor.capture_raw_batch(scenes, np.random.default_rng(99))
        np.testing.assert_array_equal(batched.mosaics, np.stack(legacy_mosaics))


class TestBuildDeviceDatasets:
    def test_bundle_structure(self):
        bundle = build_device_datasets(
            samples_per_class_train=2, samples_per_class_test=1, num_classes=3,
            image_size=16, scene_size=32, devices=["Pixel5", "S6"], seed=0,
        )
        assert set(bundle.train) == {"Pixel5", "S6"}
        assert set(bundle.test) == {"Pixel5", "S6"}
        assert bundle.num_classes == 3
        assert len(bundle.train["Pixel5"]) == 6
        assert len(bundle.test["S6"]) == 3

    def test_same_labels_across_devices(self):
        """Every device captures the same scenes, so labels align across devices."""
        bundle = build_device_datasets(
            samples_per_class_train=2, samples_per_class_test=1, num_classes=3,
            image_size=16, scene_size=32, devices=["Pixel5", "S6", "G7"], seed=0,
        )
        np.testing.assert_array_equal(bundle.train["Pixel5"].labels, bundle.train["S6"].labels)
        np.testing.assert_array_equal(bundle.test["S6"].labels, bundle.test["G7"].labels)

    def test_train_test_scenes_disjoint(self):
        bundle = build_device_datasets(
            samples_per_class_train=2, samples_per_class_test=2, num_classes=3,
            image_size=16, scene_size=32, devices=["Pixel5"], seed=0,
        )
        # Train and test pools come from different seeds, so images differ.
        assert not np.allclose(bundle.train["Pixel5"].features[:3],
                               bundle.test["Pixel5"].features[:3])

    def test_unknown_device_rejected(self):
        with pytest.raises(KeyError):
            build_device_datasets(devices=["Pixel5", "iPhone"], samples_per_class_train=1,
                                  samples_per_class_test=1, num_classes=2)

    def test_devices_helper(self):
        bundle = build_device_datasets(
            samples_per_class_train=1, samples_per_class_test=1, num_classes=2,
            image_size=16, scene_size=32, devices=["Pixel5", "S6"], seed=0,
        )
        assert bundle.devices() == ["Pixel5", "S6"]
