"""Tests for FL client partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import ArrayDataset
from repro.data.partition import ClientSpec, assign_device_types, build_client_specs, shard_dataset


def make_dataset(n=20, seed=0):
    rng = np.random.default_rng(seed)
    return ArrayDataset(rng.random((n, 4)), np.arange(n) % 3)


class TestAssignDeviceTypes:
    def test_counts_follow_shares(self):
        assignment = assign_device_types(100, {"A": 0.7, "B": 0.3}, seed=0)
        counts = {name: assignment.count(name) for name in ("A", "B")}
        assert counts["A"] == 70 and counts["B"] == 30

    def test_total_equals_num_clients(self):
        assignment = assign_device_types(37, {"A": 0.5, "B": 0.3, "C": 0.2}, seed=0)
        assert len(assignment) == 37

    def test_every_device_appears_for_large_population(self):
        shares = {f"D{i}": 1.0 for i in range(5)}
        assignment = assign_device_types(50, shares, seed=0)
        assert set(assignment) == set(shares)

    def test_exclusion(self):
        assignment = assign_device_types(20, {"A": 0.5, "B": 0.5}, seed=0, exclude=["B"])
        assert set(assignment) == {"A"}

    def test_excluding_everything_raises(self):
        with pytest.raises(ValueError):
            assign_device_types(10, {"A": 1.0}, exclude=["A"])

    def test_invalid_num_clients(self):
        with pytest.raises(ValueError):
            assign_device_types(0, {"A": 1.0})

    def test_deterministic(self):
        shares = {"A": 0.4, "B": 0.6}
        assert assign_device_types(11, shares, seed=5) == assign_device_types(11, shares, seed=5)

    @given(st.integers(1, 200))
    @settings(max_examples=25, deadline=None)
    def test_property_length_and_membership(self, num_clients):
        shares = {"A": 0.2, "B": 0.3, "C": 0.5}
        assignment = assign_device_types(num_clients, shares, seed=num_clients)
        assert len(assignment) == num_clients
        assert set(assignment) <= set(shares)


class TestShardDataset:
    def test_shards_partition_dataset(self):
        ds = ArrayDataset(np.arange(20, dtype=float).reshape(20, 1), np.zeros(20, dtype=int))
        shards = shard_dataset(ds, 4, seed=0)
        assert len(shards) == 4
        all_ids = sorted(int(x) for shard in shards for x in shard.features[:, 0])
        assert all_ids == list(range(20))

    def test_near_equal_sizes(self):
        shards = shard_dataset(make_dataset(22), 4, seed=0)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_too_many_shards_raises(self):
        with pytest.raises(ValueError):
            shard_dataset(make_dataset(3), 5)

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            shard_dataset(make_dataset(), 0)


class TestBuildClientSpecs:
    def test_every_client_gets_data(self):
        datasets = {"A": make_dataset(20, 0), "B": make_dataset(20, 1)}
        specs = build_client_specs(datasets, num_clients=10, seed=0)
        assert len(specs) == 10
        assert all(isinstance(s, ClientSpec) and len(s.dataset) > 0 for s in specs)

    def test_client_ids_sequential(self):
        datasets = {"A": make_dataset(20)}
        specs = build_client_specs(datasets, num_clients=5, seed=0)
        assert [s.client_id for s in specs] == list(range(5))

    def test_device_assignment_respects_shares(self):
        datasets = {"A": make_dataset(30, 0), "B": make_dataset(30, 1)}
        specs = build_client_specs(datasets, num_clients=10, shares={"A": 0.8, "B": 0.2}, seed=0)
        counts = {"A": 0, "B": 0}
        for spec in specs:
            counts[spec.device] += 1
        assert counts["A"] == 8 and counts["B"] == 2

    def test_exclude_device(self):
        datasets = {"A": make_dataset(20, 0), "B": make_dataset(20, 1)}
        specs = build_client_specs(datasets, num_clients=6, seed=0, exclude=["B"])
        assert all(spec.device == "A" for spec in specs)

    def test_clients_of_same_device_get_distinct_shards(self):
        features = np.arange(20, dtype=float).reshape(20, 1)
        datasets = {"A": ArrayDataset(features, np.zeros(20, dtype=int))}
        specs = build_client_specs(datasets, num_clients=4, seed=0)
        id_sets = [frozenset(spec.dataset.features[:, 0].astype(int)) for spec in specs]
        assert len(set(id_sets)) == 4  # all different shards

    def test_more_clients_than_samples_reuses_shards(self):
        datasets = {"A": make_dataset(3)}
        specs = build_client_specs(datasets, num_clients=6, seed=0)
        assert len(specs) == 6
        assert all(len(spec.dataset) >= 1 for spec in specs)

    def test_missing_device_dataset_raises(self):
        datasets = {"A": make_dataset(10)}
        with pytest.raises(KeyError):
            build_client_specs(datasets, num_clients=4, shares={"A": 0.5, "B": 0.5}, seed=0)

    def test_client_spec_validation(self):
        with pytest.raises(ValueError):
            ClientSpec(client_id=-1, device="A", dataset=make_dataset(2))
