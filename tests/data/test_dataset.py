"""Tests for ArrayDataset, DataLoader and layout conversion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import ArrayDataset, DataLoader, hwc_to_nchw, nchw_to_hwc, train_test_split


def make_dataset(n=20, classes=4, seed=0):
    rng = np.random.default_rng(seed)
    return ArrayDataset(rng.random((n, 6)), np.arange(n) % classes)


class TestLayoutConversion:
    def test_hwc_to_nchw_shape(self):
        assert hwc_to_nchw(np.zeros((2, 8, 10, 3))).shape == (2, 3, 8, 10)

    def test_round_trip(self):
        images = np.random.default_rng(0).random((3, 5, 7, 3))
        np.testing.assert_allclose(nchw_to_hwc(hwc_to_nchw(images)), images)

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            hwc_to_nchw(np.zeros((8, 10, 3)))
        with pytest.raises(ValueError):
            nchw_to_hwc(np.zeros((3, 8, 10)))


class TestArrayDataset:
    def test_length(self):
        assert len(make_dataset(15)) == 15

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 2)), np.zeros(4))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((0, 2)), np.zeros(0))

    def test_subset(self):
        ds = make_dataset(10)
        sub = ds.subset(np.array([0, 2, 4]))
        assert len(sub) == 3
        np.testing.assert_allclose(sub.features[1], ds.features[2])

    def test_merge(self):
        a, b = make_dataset(5), make_dataset(7, seed=1)
        merged = a.merge(b)
        assert len(merged) == 12
        np.testing.assert_allclose(merged.features[:5], a.features)

    def test_metadata_preserved_in_subset(self):
        ds = ArrayDataset(np.zeros((4, 2)), np.zeros(4), metadata={"device": "S6"})
        assert ds.subset(np.array([0, 1])).metadata == {"device": "S6"}

    def test_subset_boolean_mask_selects_masked_rows(self):
        """Regression: a bool mask used to be coerced to int 0/1 indices,
        returning samples 0 and 1 repeatedly instead of the masked rows."""
        ds = make_dataset(6)
        mask = np.array([False, True, False, False, True, True])
        sub = ds.subset(mask)
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.features, ds.features[[1, 4, 5]])
        np.testing.assert_array_equal(sub.labels, ds.labels[[1, 4, 5]])

    def test_subset_boolean_mask_differs_from_int_coercion(self):
        ds = make_dataset(4)
        mask = np.array([False, True, True, False])
        sub = ds.subset(mask)
        coerced = ds.subset(mask.astype(int))  # the old, buggy interpretation
        assert not np.array_equal(sub.features, coerced.features)

    def test_subset_rejects_wrong_length_mask(self):
        ds = make_dataset(5)
        with pytest.raises(ValueError):
            ds.subset(np.array([True, False]))


class TestDataLoader:
    def test_batches_cover_all_samples(self):
        ds = make_dataset(23)
        loader = DataLoader(ds, batch_size=5, shuffle=True, seed=0)
        total = sum(len(features) for features, _ in loader)
        assert total == 23

    def test_len(self):
        ds = make_dataset(23)
        assert len(DataLoader(ds, batch_size=5)) == 5
        assert len(DataLoader(ds, batch_size=5, drop_last=True)) == 4

    def test_drop_last(self):
        ds = make_dataset(23)
        loader = DataLoader(ds, batch_size=5, drop_last=True)
        sizes = [len(features) for features, _ in loader]
        assert all(size == 5 for size in sizes)

    def test_no_shuffle_preserves_order(self):
        ds = make_dataset(10)
        loader = DataLoader(ds, batch_size=10, shuffle=False)
        features, labels = next(iter(loader))
        np.testing.assert_allclose(features, ds.features)
        np.testing.assert_array_equal(labels, ds.labels)

    def test_shuffle_changes_order_but_not_content(self):
        ds = make_dataset(50)
        loader = DataLoader(ds, batch_size=50, shuffle=True, seed=1)
        features, labels = next(iter(loader))
        assert not np.allclose(features, ds.features)
        assert sorted(labels.tolist()) == sorted(ds.labels.tolist())

    def test_labels_stay_aligned_with_features(self):
        ds = make_dataset(30)
        # Make labels recoverable from the features: label = first feature column value index
        features = np.arange(30, dtype=float).reshape(30, 1)
        labels = np.arange(30)
        aligned = ArrayDataset(features, labels)
        loader = DataLoader(aligned, batch_size=7, shuffle=True, seed=3)
        for batch_features, batch_labels in loader:
            np.testing.assert_array_equal(batch_features[:, 0].astype(int), batch_labels)

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(make_dataset(), batch_size=0)

    @given(st.integers(1, 50), st.integers(1, 12))
    @settings(max_examples=25, deadline=None)
    def test_property_all_samples_yielded_once(self, n, batch_size):
        ds = ArrayDataset(np.arange(n, dtype=float).reshape(n, 1), np.zeros(n, dtype=int))
        loader = DataLoader(ds, batch_size=batch_size, shuffle=True, seed=0)
        seen = np.concatenate([features[:, 0] for features, _ in loader])
        assert sorted(seen.tolist()) == list(range(n))


class TestTrainTestSplit:
    def test_sizes(self):
        ds = make_dataset(40)
        train, test = train_test_split(ds, test_fraction=0.25, seed=0)
        assert len(train) + len(test) == 40
        assert 5 <= len(test) <= 15

    def test_no_overlap(self):
        features = np.arange(30, dtype=float).reshape(30, 1)
        ds = ArrayDataset(features, np.arange(30) % 3)
        train, test = train_test_split(ds, 0.3, seed=1)
        train_ids = set(train.features[:, 0].astype(int))
        test_ids = set(test.features[:, 0].astype(int))
        assert not train_ids & test_ids
        assert train_ids | test_ids == set(range(30))

    def test_stratified_keeps_all_classes_in_test(self):
        ds = make_dataset(40, classes=4)
        _, test = train_test_split(ds, 0.25, seed=0, stratify=True)
        assert set(np.unique(test.labels)) == {0, 1, 2, 3}

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(make_dataset(), 1.5)

    def test_two_sample_class_keeps_one_in_train(self):
        """Regression: the per-class test count was uncapped, so a 2-sample
        class at a high test fraction lost *all* its samples to test."""
        labels = np.array([0] * 10 + [1] * 2)
        ds = ArrayDataset(np.arange(12, dtype=float).reshape(12, 1), labels)
        for seed in range(5):
            train, test = train_test_split(ds, test_fraction=0.75, seed=seed)
            assert np.count_nonzero(train.labels == 1) == 1
            assert np.count_nonzero(test.labels == 1) == 1

    def test_single_sample_class_goes_to_test(self):
        """A 1-sample class cannot appear in both splits; the floor of one
        test sample per class wins (documented behaviour)."""
        labels = np.array([0] * 8 + [1])
        ds = ArrayDataset(np.arange(9, dtype=float).reshape(9, 1), labels)
        train, test = train_test_split(ds, test_fraction=0.25, seed=0)
        assert np.count_nonzero(test.labels == 1) == 1
        assert np.count_nonzero(train.labels == 1) == 0

    def test_every_multi_sample_class_survives_in_train(self):
        labels = np.repeat(np.arange(5), 2)  # five 2-sample classes
        ds = ArrayDataset(np.arange(10, dtype=float).reshape(10, 1), labels)
        train, _ = train_test_split(ds, test_fraction=0.9, seed=3)
        assert set(np.unique(train.labels)) == set(range(5))


class TestSequentialLoaderViews:
    """The shuffle=False loader yields read-only views: same values as the
    seed's fancy-indexed copies, but in-place mutation fails loudly instead
    of silently corrupting the dataset."""

    def test_values_match_fancy_indexing(self):
        rng = np.random.default_rng(0)
        dataset = ArrayDataset(rng.normal(size=(10, 3)), np.arange(10))
        batches = list(DataLoader(dataset, batch_size=4, shuffle=False))
        offset = 0
        for features, labels in batches:
            np.testing.assert_array_equal(
                features, dataset.features[np.arange(offset, offset + len(features))])
            np.testing.assert_array_equal(
                labels, dataset.labels[np.arange(offset, offset + len(labels))])
            offset += len(features)
        assert offset == 10

    def test_batches_are_read_only(self):
        dataset = ArrayDataset(np.zeros((6, 2)), np.zeros(6))
        features, labels = next(iter(DataLoader(dataset, batch_size=3, shuffle=False)))
        with pytest.raises(ValueError):
            features[0, 0] = 1.0
        with pytest.raises(ValueError):
            labels[0] = 1.0
        # The dataset itself stays writable.
        dataset.features[0, 0] = 1.0

    def test_shuffled_batches_stay_writable_copies(self):
        dataset = ArrayDataset(np.zeros((6, 2)), np.zeros(6))
        features, _ = next(iter(DataLoader(dataset, batch_size=3, shuffle=True)))
        features[0, 0] = 9.0
        assert dataset.features[0, 0] == 0.0
