"""Tests for the procedural scene generator."""

import numpy as np
import pytest

from repro.data.scenes import SCENE_CLASSES, SceneGenerator, generate_scene_dataset


class TestSceneGenerator:
    def test_twelve_classes_defined(self):
        assert len(SCENE_CLASSES) == 12

    def test_output_shape_and_range(self):
        gen = SceneGenerator(image_size=32, num_classes=12, seed=0)
        for label in range(12):
            scene = gen.generate(label)
            assert scene.shape == (32, 32, 3)
            assert scene.min() >= 0.0 and scene.max() <= 1.0

    def test_invalid_label(self):
        gen = SceneGenerator(num_classes=4)
        with pytest.raises(ValueError):
            gen.generate(4)

    def test_invalid_num_classes(self):
        with pytest.raises(ValueError):
            SceneGenerator(num_classes=1)
        with pytest.raises(ValueError):
            SceneGenerator(num_classes=20)

    def test_invalid_image_size(self):
        with pytest.raises(ValueError):
            SceneGenerator(image_size=4)

    def test_class_name_lookup(self):
        assert SceneGenerator().class_name(0) == "chihuahua"

    def test_intra_class_variation(self):
        gen = SceneGenerator(image_size=32, seed=0)
        a = gen.generate(2)
        b = gen.generate(2)
        assert not np.allclose(a, b)

    def test_inter_class_differences_larger_than_intra(self):
        """Mean pairwise distance across classes exceeds within-class distance."""
        gen = SceneGenerator(image_size=32, num_classes=6, seed=0)
        rng = np.random.default_rng(0)
        per_class = {c: [gen.generate(c, rng) for _ in range(4)] for c in range(6)}
        intra, inter = [], []
        for c, scenes in per_class.items():
            for i in range(len(scenes)):
                for j in range(i + 1, len(scenes)):
                    intra.append(np.abs(scenes[i] - scenes[j]).mean())
        classes = list(per_class)
        for i in range(len(classes)):
            for j in range(i + 1, len(classes)):
                inter.append(np.abs(per_class[classes[i]][0] - per_class[classes[j]][0]).mean())
        assert np.mean(inter) > np.mean(intra) * 0.8  # classes are visually distinct

    def test_generate_batch_deterministic(self):
        gen = SceneGenerator(image_size=16, num_classes=4, seed=0)
        labels = np.array([0, 1, 2, 3])
        np.testing.assert_allclose(gen.generate_batch(labels, seed=5),
                                   gen.generate_batch(labels, seed=5))


class TestGenerateSceneDataset:
    def test_balanced_classes(self):
        scenes, labels = generate_scene_dataset(5, num_classes=4, image_size=16, seed=0)
        assert scenes.shape == (20, 16, 16, 3)
        counts = np.bincount(labels, minlength=4)
        np.testing.assert_array_equal(counts, [5, 5, 5, 5])

    def test_deterministic(self):
        a_scenes, a_labels = generate_scene_dataset(2, num_classes=3, image_size=16, seed=1)
        b_scenes, b_labels = generate_scene_dataset(2, num_classes=3, image_size=16, seed=1)
        np.testing.assert_allclose(a_scenes, b_scenes)
        np.testing.assert_array_equal(a_labels, b_labels)

    def test_different_seeds_differ(self):
        a, _ = generate_scene_dataset(2, num_classes=3, image_size=16, seed=0)
        b, _ = generate_scene_dataset(2, num_classes=3, image_size=16, seed=9)
        assert not np.allclose(a, b)

    def test_invalid_samples(self):
        with pytest.raises(ValueError):
            generate_scene_dataset(0)

    def test_shuffled_label_order(self):
        _, labels = generate_scene_dataset(5, num_classes=4, image_size=16, seed=0)
        assert not np.array_equal(labels, np.repeat(np.arange(4), 5))
