"""Tests for experiment result containers, scales, factories and reporting."""

import numpy as np
import pytest

from repro.eval.factories import make_model_factory
from repro.eval.reporting import result_to_csv, results_to_markdown, write_report
from repro.eval.results import ExperimentResult, format_mapping, format_table
from repro.eval.scale import SCALES, get_scale
from repro.nn.tensor import Tensor


class TestFormatting:
    def test_format_table_structure(self):
        table = format_table(["a", "b"], [[1, 2.5], ["x", 3]])
        lines = table.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert "2.5000" in lines[2]

    def test_format_mapping(self):
        table = format_mapping({"k": 1.0})
        assert "| k | 1.0000 |" in table


class TestExperimentResult:
    def make(self):
        return ExperimentResult(
            experiment_id="table9",
            description="demo",
            headers=["method", "value"],
            rows=[["fedavg", 0.5]],
            scalars={"fedavg_value": 0.5},
        )

    def test_markdown_contains_table_and_scalars(self):
        md = self.make().to_markdown()
        assert "table9" in md and "fedavg" in md and "fedavg_value" in md

    def test_scalar_lookup(self):
        assert self.make().scalar("fedavg_value") == 0.5

    def test_scalar_missing_raises_with_available(self):
        with pytest.raises(KeyError, match="available"):
            self.make().scalar("missing")

    def test_csv_rendering(self):
        csv_text = result_to_csv(self.make())
        assert csv_text.splitlines()[0] == "method,value"
        assert "fedavg,0.5" in csv_text

    def test_results_to_markdown_concatenates(self):
        md = results_to_markdown([self.make(), self.make()], title="Report")
        assert md.count("table9") >= 2
        assert md.startswith("# Report")

    def test_write_report(self, tmp_path):
        report = write_report([self.make()], tmp_path)
        assert report.exists()
        assert (tmp_path / "table9.csv").exists()
        assert "table9" in report.read_text()

    def test_write_report_emits_reloadable_json(self, tmp_path):
        write_report([self.make()], tmp_path)
        json_file = tmp_path / "table9.json"
        assert json_file.exists()
        reloaded = ExperimentResult.from_json(json_file.read_text())
        assert reloaded == self.make()

    def test_json_round_trip(self):
        result = self.make()
        result.metadata = {"spec": {"strategy": "fedavg"}, "scale": "smoke"}
        assert ExperimentResult.from_json(result.to_json()) == result

    def test_from_json_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown ExperimentResult field"):
            ExperimentResult.from_json('{"experiment_id": "x", "bogus": 1}')

    def test_to_json_stringifies_exotic_metadata(self):
        result = self.make()
        result.metadata = {"scale_obj": get_scale("smoke")}
        reloaded = ExperimentResult.from_json(result.to_json())
        assert "smoke" in str(reloaded.metadata["scale_obj"])


class TestScales:
    def test_presets_exist(self):
        assert {"smoke", "default", "paper"} <= set(SCALES)

    def test_get_scale_by_name(self):
        assert get_scale("smoke").name == "smoke"

    def test_get_scale_passthrough(self):
        scale = SCALES["smoke"]
        assert get_scale(scale) is scale

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            get_scale("galactic")

    def test_paper_scale_matches_paper_parameters(self):
        paper = get_scale("paper")
        assert paper.num_clients == 100
        assert paper.clients_per_round == 20
        assert paper.num_rounds == 1000
        assert paper.batch_size == 10
        assert paper.local_epochs == 1
        assert paper.num_classes == 12

    def test_with_overrides(self):
        custom = get_scale("smoke").with_overrides(num_rounds=7)
        assert custom.num_rounds == 7
        assert get_scale("smoke").num_rounds != 7 or custom is not get_scale("smoke")

    def test_scales_ordered_by_size(self):
        assert (get_scale("smoke").samples_per_class_train
                <= get_scale("default").samples_per_class_train
                <= get_scale("paper").samples_per_class_train)


class TestModelFactory:
    def test_mlp_factory(self):
        scale = get_scale("smoke")
        factory = make_model_factory(scale, num_classes=4, image_size=8, model_name="simple_mlp")
        model = factory()
        out = model(Tensor(np.zeros((2, 3, 8, 8))))
        assert out.shape == (2, 4)

    def test_cnn_factory(self):
        scale = get_scale("smoke")
        factory = make_model_factory(scale, num_classes=5, image_size=16,
                                     model_name="mobilenetv3_small")
        out = factory()(Tensor(np.zeros((1, 3, 16, 16))))
        assert out.shape == (1, 5)

    def test_factories_deterministic(self):
        scale = get_scale("smoke")
        factory = make_model_factory(scale, num_classes=3, image_size=8, model_name="simple_mlp")
        a, b = factory(), factory()
        for pa, pb in zip(a.parameters(), b.parameters()):
            np.testing.assert_allclose(pa.data, pb.data)

    def test_ecg_factory(self):
        scale = get_scale("smoke")
        factory = make_model_factory(scale, num_classes=1, image_size=32,
                                     model_name="ecg_regressor")
        out = factory()(Tensor(np.zeros((2, 32))))
        assert out.shape == (2, 1)

    def test_multilabel_factory(self):
        scale = get_scale("smoke")
        factory = make_model_factory(scale, num_classes=6, image_size=16,
                                     model_name="multilabel_cnn")
        out = factory()(Tensor(np.zeros((2, 3, 16, 16))))
        assert out.shape == (2, 6)
