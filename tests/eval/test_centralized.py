"""Tests for the centralized-training helpers used by the characterization study."""

import numpy as np
import pytest

from repro.core.swad import SWADAverager
from repro.core.transforms import default_isp_transform
from repro.data.dataset import ArrayDataset
from repro.eval.centralized import evaluate_on_devices, evaluate_under_transform, train_centralized
from repro.fl.training import evaluate_loss, evaluate_metric
from repro.isp.transforms import GaussianNoise
from repro.nn.models import SimpleMLP


@pytest.fixture
def separable_dataset():
    rng = np.random.default_rng(0)
    n, size = 36, 6
    labels = np.arange(n) % 3
    features = rng.normal(0.4, 0.05, size=(n, 3, size, size))
    for i, label in enumerate(labels):
        features[i, label] += 0.4
    return ArrayDataset(np.clip(features, 0, 1), labels)


def make_model():
    return SimpleMLP(3 * 6 * 6, 3, hidden=16, seed=0)


class TestTrainCentralized:
    def test_training_improves_loss(self, separable_dataset):
        model = make_model()
        initial = evaluate_loss(model, separable_dataset, "classification")
        train_centralized(model, separable_dataset, epochs=8, batch_size=6,
                          learning_rate=0.3, seed=0)
        assert evaluate_loss(model, separable_dataset, "classification") < initial

    def test_training_reaches_good_accuracy(self, separable_dataset):
        model = make_model()
        train_centralized(model, separable_dataset, epochs=15, batch_size=6,
                          learning_rate=0.3, seed=0)
        assert evaluate_metric(model, separable_dataset, "classification") > 0.7

    def test_invalid_epochs(self, separable_dataset):
        with pytest.raises(ValueError):
            train_centralized(make_model(), separable_dataset, epochs=0)

    def test_with_transform(self, separable_dataset):
        model = make_model()
        transform = default_isp_transform(wb_degree=0.2, gamma_degree=0.2)
        train_centralized(model, separable_dataset, epochs=3, batch_size=6,
                          learning_rate=0.2, transform=transform, seed=0)
        assert evaluate_metric(model, separable_dataset, "classification") >= 0.0

    def test_with_swad_averager_loads_average(self, separable_dataset):
        model = make_model()
        averager = SWADAverager()
        train_centralized(model, separable_dataset, epochs=2, batch_size=6,
                          learning_rate=0.2, weight_averager=averager, seed=0)
        assert averager.count > 0
        # The loaded weights are exactly the averager's average.
        np.testing.assert_allclose(model.state_dict()["fc1.weight"],
                                   averager.average()["fc1.weight"])

    def test_per_epoch_averaging_counts_epochs(self, separable_dataset):
        model = make_model()
        averager = SWADAverager()
        train_centralized(model, separable_dataset, epochs=3, batch_size=6,
                          learning_rate=0.2, weight_averager=averager,
                          average_per_epoch=True, seed=0)
        assert averager.count == 3


class TestEvaluationHelpers:
    def test_evaluate_on_devices(self, separable_dataset):
        model = make_model()
        metrics = evaluate_on_devices(model, {"a": separable_dataset, "b": separable_dataset})
        assert set(metrics) == {"a", "b"}
        assert metrics["a"] == pytest.approx(metrics["b"])

    def test_evaluate_under_transform_returns_accuracy(self, separable_dataset):
        model = make_model()
        train_centralized(model, separable_dataset, epochs=10, batch_size=6,
                          learning_rate=0.3, seed=0)
        clean = evaluate_metric(model, separable_dataset, "classification")
        perturbed = evaluate_under_transform(model, separable_dataset, GaussianNoise(0.0), seed=0)
        assert perturbed == pytest.approx(clean)

    def test_strong_noise_degrades_accuracy(self, separable_dataset):
        model = make_model()
        train_centralized(model, separable_dataset, epochs=15, batch_size=6,
                          learning_rate=0.3, seed=0)
        clean = evaluate_metric(model, separable_dataset, "classification")
        noisy = evaluate_under_transform(model, separable_dataset,
                                         GaussianNoise(degree=5.0, max_sigma=0.4), seed=0)
        assert noisy <= clean + 1e-9
