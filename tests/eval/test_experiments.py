"""Integration tests: every experiment runner completes at smoke scale and its
result has the structure the corresponding table/figure needs."""

import numpy as np
import pytest

from repro.eval.experiments import EXPERIMENTS, run_experiment
from repro.eval.results import ExperimentResult


class TestRunnerIndex:
    def test_all_paper_artifacts_covered(self):
        expected = {"fig1", "table2", "fig2", "fig3", "fig4", "fig5", "fig7",
                    "table4", "table5", "table6", "fig8", "ecg", "fig9",
                    "async"}
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("table99")


@pytest.fixture(scope="module")
def few_devices():
    return ["Pixel5", "S6", "G7"]


class TestCharacterizationRunners:
    def test_fig1(self, few_devices):
        result = run_experiment("fig1", scale="smoke", devices=few_devices)
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == "fig1"
        assert len(result.rows) == 2
        assert 0.0 <= result.scalar("homogeneous_accuracy") <= 1.0
        assert 0.0 <= result.scalar("heterogeneous_accuracy") <= 1.0

    def test_table2_matrix_structure(self, few_devices):
        result = run_experiment("table2", scale="smoke", devices=few_devices)
        # One row per train device plus the "mean others" row.
        assert len(result.rows) == len(few_devices) + 1
        # Diagonal entries are zero degradation by construction.
        for row in result.rows[:-1]:
            device = row[0]
            column = result.headers.index(device)
            assert row[column] == pytest.approx(0.0)
        assert np.isfinite(result.scalar("mean_degradation"))

    def test_fig2_uses_raw(self, few_devices):
        result = run_experiment("fig2", scale="smoke", devices=few_devices)
        assert result.metadata["raw"] is True
        assert len(result.rows) == len(few_devices) + 1

    def test_fig3_covers_all_stage_variants(self, few_devices):
        result = run_experiment("fig3", scale="smoke", devices=few_devices[:2])
        assert len(result.rows) == 12  # 6 stages x 2 options
        variant_names = {row[0] for row in result.rows}
        assert any(name.startswith("white_balance") for name in variant_names)
        assert any(name.startswith("tone") for name in variant_names)

    def test_fig4_reports_all_devices(self, few_devices):
        result = run_experiment("fig4", scale="smoke", devices=few_devices)
        assert {row[0] for row in result.rows} == set(few_devices)
        assert "dominant_accuracy" in result.scalars

    def test_fig5_rows_per_excluded_device(self, few_devices):
        result = run_experiment("fig5", scale="smoke", devices=few_devices)
        assert {row[0] for row in result.rows} == set(few_devices)
        assert "mean_degradation" in result.scalars


class TestGeneralizationAndEvaluationRunners:
    def test_fig7_compares_three_methods(self):
        result = run_experiment("fig7", scale="smoke", test_degrees=(0.3, 0.6))
        methods = {row[0] for row in result.rows}
        assert methods == {"transform_only", "transform_swa", "transform_swad"}
        transforms = {row[1] for row in result.rows}
        assert transforms == {"affine", "gaussian_noise", "white_balance", "gamma"}

    def test_table4_rows_and_metrics(self, few_devices):
        result = run_experiment("table4", scale="smoke", devices=few_devices,
                                methods=("fedavg", "heteroswitch"))
        assert [row[0] for row in result.rows] == ["fedavg", "heteroswitch"]
        for method in ("fedavg", "heteroswitch"):
            assert 0.0 <= result.scalar(f"{method}_worst_case") <= 1.0
            assert result.scalar(f"{method}_variance") >= 0.0

    def test_table5_model_sweep(self, few_devices):
        result = run_experiment("table5", scale="smoke", devices=few_devices,
                                model_names=("simple_mlp",), methods=("fedavg", "heteroswitch"))
        assert len(result.rows) == 2
        assert all(row[0] == "simple_mlp" for row in result.rows)

    def test_table6_flair(self):
        result = run_experiment("table6", scale="smoke", methods=("fedavg", "heteroswitch"))
        assert len(result.rows) == 2
        for method in ("fedavg", "heteroswitch"):
            assert 0.0 <= result.scalar(f"{method}_averaged_precision") <= 1.0

    def test_fig8_per_device_rows(self):
        result = run_experiment("fig8", scale="smoke", methods=("fedavg",))
        assert result.scalar("fedavg_average") >= 0.0
        assert len(result.rows) == result.metadata["num_device_types"]

    def test_ecg_deviation(self):
        result = run_experiment("ecg", scale="smoke", methods=("fedavg", "heteroswitch"))
        assert result.scalar("fedavg_mean_deviation") >= 0.0
        assert result.scalar("heteroswitch_mean_deviation") >= 0.0
        sensors = {row[1] for row in result.rows}
        assert sensors == {"clinical", "chest_strap", "wrist_wearable", "handheld"}

    def test_fig9_sweeps(self):
        result = run_experiment("fig9", scale="smoke",
                                sweeps={"learning_rate": (0.01, 0.1), "batch_size": (4,)})
        assert len(result.rows) == 3
        parameters = {row[0] for row in result.rows}
        assert parameters == {"learning_rate", "batch_size"}


class TestResultRendering:
    def test_markdown_rendering_of_real_result(self, few_devices):
        result = run_experiment("fig1", scale="smoke", devices=few_devices)
        markdown = result.to_markdown()
        assert "fig1" in markdown and "homogeneous" in markdown
