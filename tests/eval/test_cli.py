"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.eval.experiments import EXPERIMENTS
from repro.runtime import STRATEGY_REGISTRY


class TestParser:
    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_parses(self):
        args = build_parser().parse_args(["run", "table4", "--scale", "smoke", "--seed", "3"])
        assert args.experiment == "table4"
        assert args.scale == "smoke"
        assert args.seed == 3

    def test_run_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table99"])

    def test_run_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table4", "--scale", "huge"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bench_command_parses(self):
        args = build_parser().parse_args(
            ["bench", "--spec", "spec.json", "--strategy", "heteroswitch",
             "--seeds", "0", "1", "--rounds", "2"])
        assert args.command == "bench"
        assert args.spec == "spec.json"
        assert args.strategy == "heteroswitch"
        assert args.seeds == [0, 1]
        assert args.rounds == 2

    def test_bench_executor_flags_parse(self):
        args = build_parser().parse_args(
            ["bench", "--executor", "process", "--workers", "4"])
        assert args.executor == "process"
        assert args.workers == 4

    def test_bench_rejects_unknown_executor(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--executor", "gpu"])

    def test_sweep_executor_flags_parse(self):
        args = build_parser().parse_args(
            ["sweep", "--strategies", "fedavg", "--executor", "thread", "--workers", "2"])
        assert args.executor == "thread"
        assert args.workers == 2

    def test_bench_rejects_unknown_strategy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--strategy", "sgd"])

    def test_sweep_command_parses(self):
        args = build_parser().parse_args(
            ["sweep", "--strategies", "fedavg", "heteroswitch", "--seeds", "0", "1"])
        assert args.command == "sweep"
        assert args.strategies == ["fedavg", "heteroswitch"]


class TestMain:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in EXPERIMENTS:
            assert experiment_id in out

    def test_list_prints_registries(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for strategy in STRATEGY_REGISTRY:
            assert strategy in out
        for kind in ("strategies", "models", "datasets", "samplers", "callbacks",
                     "executors"):
            assert f"{kind}:" in out

    def test_run_single_experiment(self, capsys):
        assert main(["run", "fig7", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "completed" in out

    def test_run_with_output_report(self, tmp_path, capsys):
        assert main(["run", "fig7", "--scale", "smoke", "--output", str(tmp_path)]) == 0
        assert (tmp_path / "report.md").exists()
        assert (tmp_path / "fig7.csv").exists()

    def test_run_deterministic_given_seed(self, capsys):
        main(["run", "fig7", "--scale", "smoke", "--seed", "5"])
        first = capsys.readouterr().out
        main(["run", "fig7", "--scale", "smoke", "--seed", "5"])
        second = capsys.readouterr().out
        # Strip the timing line, which legitimately differs between runs.
        strip = lambda text: "\n".join(l for l in text.splitlines() if "completed in" not in l)
        assert strip(first) == strip(second)


@pytest.fixture
def spec_file(tmp_path):
    """A tiny RunSpec JSON file (3 devices, 2 rounds) for CLI smoke runs."""
    spec = {
        "strategy": "fedavg",
        "dataset": "device_capture",
        "dataset_kwargs": {"devices": ["Pixel5", "S6", "G7"]},
        "scale": "smoke",
        "config_overrides": {"num_rounds": 2},
        "seeds": [0],
    }
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec))
    return str(path)


class TestBench:
    def test_bench_from_spec_file(self, spec_file, capsys):
        assert main(["bench", "--spec", spec_file]) == 0
        out = capsys.readouterr().out
        assert "bench" in out and "fedavg/device_capture" in out
        assert "worst_case" in out

    def test_bench_cli_overrides(self, spec_file, capsys):
        assert main(["bench", "--spec", spec_file, "--strategy", "heteroswitch",
                     "--rounds", "1"]) == 0
        out = capsys.readouterr().out
        assert "heteroswitch/device_capture" in out

    def test_bench_writes_report(self, spec_file, tmp_path, capsys):
        out_dir = tmp_path / "report"
        assert main(["bench", "--spec", spec_file, "--output", str(out_dir)]) == 0
        assert (out_dir / "report.md").exists()
        assert (out_dir / "bench.csv").exists()

    def test_bench_missing_spec_file_fails_cleanly(self, capsys):
        assert main(["bench", "--spec", "/nonexistent/spec.json"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot read spec file")

    def test_bench_invalid_json_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["bench", "--spec", str(path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_bench_unknown_strategy_in_spec_lists_available(self, tmp_path, capsys):
        path = tmp_path / "typo.json"
        path.write_text(json.dumps({"strategy": "heteroswich"}))
        assert main(["bench", "--spec", str(path)]) == 2
        err = capsys.readouterr().err
        assert "unknown strategy 'heteroswich'" in err and "heteroswitch" in err

    def test_bench_invalid_cli_override_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "central.json"
        path.write_text(json.dumps({"kind": "centralized", "dataset": "scenes"}))
        # --rounds adds a config override, which centralized specs reject.
        assert main(["bench", "--spec", str(path), "--rounds", "3"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: invalid spec after CLI overrides")

    def test_bench_deterministic_given_seed(self, spec_file, capsys):
        main(["bench", "--spec", spec_file])
        first = capsys.readouterr().out
        main(["bench", "--spec", spec_file])
        second = capsys.readouterr().out
        strip = lambda text: "\n".join(l for l in text.splitlines() if "completed in" not in l)
        assert strip(first) == strip(second)

    def test_bench_workers_without_parallel_executor_fails_cleanly(self, spec_file, capsys):
        """--workers on an (implicitly) serial run would silently do nothing."""
        assert main(["bench", "--spec", spec_file, "--workers", "4"]) == 2
        err = capsys.readouterr().err
        assert "--workers has no effect with the serial executor" in err

    def test_bench_parallel_executor_matches_serial(self, spec_file, capsys):
        """--executor/--workers change the wall clock, never the numbers."""
        assert main(["bench", "--spec", spec_file]) == 0
        serial = capsys.readouterr().out
        assert main(["bench", "--spec", spec_file, "--executor", "thread",
                     "--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        strip = lambda text: "\n".join(l for l in text.splitlines() if "completed in" not in l)
        assert strip(serial) == strip(parallel)


class TestSweep:
    def test_sweep_over_strategies_and_seeds(self, spec_file, capsys):
        assert main(["sweep", "--spec", spec_file, "--strategies", "fedavg",
                     "heteroswitch", "--seeds", "0", "1"]) == 0
        out = capsys.readouterr().out
        assert "sweep" in out
        # One row per (strategy, seed) plus aggregate mean/std scalars.
        assert out.count("| fedavg |") == 2
        assert out.count("| heteroswitch |") == 2
        assert "fedavg_average_std" in out

    def test_sweep_writes_report(self, spec_file, tmp_path, capsys):
        out_dir = tmp_path / "report"
        assert main(["sweep", "--spec", spec_file, "--output", str(out_dir)]) == 0
        assert (out_dir / "report.md").exists()
        assert (out_dir / "sweep.csv").exists()
