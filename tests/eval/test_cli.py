"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.eval.experiments import EXPERIMENTS


class TestParser:
    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_parses(self):
        args = build_parser().parse_args(["run", "table4", "--scale", "smoke", "--seed", "3"])
        assert args.experiment == "table4"
        assert args.scale == "smoke"
        assert args.seed == 3

    def test_run_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table99"])

    def test_run_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table4", "--scale", "huge"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in EXPERIMENTS:
            assert experiment_id in out

    def test_run_single_experiment(self, capsys):
        assert main(["run", "fig7", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "completed" in out

    def test_run_with_output_report(self, tmp_path, capsys):
        assert main(["run", "fig7", "--scale", "smoke", "--output", str(tmp_path)]) == 0
        assert (tmp_path / "report.md").exists()
        assert (tmp_path / "fig7.csv").exists()

    def test_run_deterministic_given_seed(self, capsys):
        main(["run", "fig7", "--scale", "smoke", "--seed", "5"])
        first = capsys.readouterr().out
        main(["run", "fig7", "--scale", "smoke", "--seed", "5"])
        second = capsys.readouterr().out
        # Strip the timing line, which legitimately differs between runs.
        strip = lambda text: "\n".join(l for l in text.splitlines() if "completed in" not in l)
        assert strip(first) == strip(second)
