"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.eval.experiments import EXPERIMENTS
from repro.runtime import STRATEGY_REGISTRY


class TestParser:
    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_parses(self):
        args = build_parser().parse_args(["run", "table4", "--scale", "smoke", "--seed", "3"])
        assert args.experiment == "table4"
        assert args.scale == "smoke"
        assert args.seed == 3

    def test_run_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table99"])

    def test_run_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table4", "--scale", "huge"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bench_command_parses(self):
        args = build_parser().parse_args(
            ["bench", "--spec", "spec.json", "--strategy", "heteroswitch",
             "--seeds", "0", "1", "--rounds", "2"])
        assert args.command == "bench"
        assert args.spec == "spec.json"
        assert args.strategy == "heteroswitch"
        assert args.seeds == [0, 1]
        assert args.rounds == 2

    def test_bench_executor_flags_parse(self):
        args = build_parser().parse_args(
            ["bench", "--executor", "process", "--workers", "4"])
        assert args.executor == "process"
        assert args.workers == 4

    def test_bench_rejects_unknown_executor(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--executor", "gpu"])

    def test_sweep_executor_flags_parse(self):
        args = build_parser().parse_args(
            ["sweep", "--strategies", "fedavg", "--executor", "thread", "--workers", "2"])
        assert args.executor == "thread"
        assert args.workers == 2

    def test_bench_rejects_unknown_strategy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--strategy", "sgd"])

    def test_sweep_command_parses(self):
        args = build_parser().parse_args(
            ["sweep", "--strategies", "fedavg", "heteroswitch", "--seeds", "0", "1"])
        assert args.command == "sweep"
        assert args.strategies == ["fedavg", "heteroswitch"]


class TestMain:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in EXPERIMENTS:
            assert experiment_id in out

    def test_list_prints_registries(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for strategy in STRATEGY_REGISTRY:
            assert strategy in out
        for kind in ("strategies", "models", "datasets", "samplers", "callbacks",
                     "executors"):
            assert f"{kind}:" in out

    def test_run_single_experiment(self, capsys):
        assert main(["run", "fig7", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "completed" in out

    def test_run_with_output_report(self, tmp_path, capsys):
        assert main(["run", "fig7", "--scale", "smoke", "--output", str(tmp_path)]) == 0
        assert (tmp_path / "report.md").exists()
        assert (tmp_path / "fig7.csv").exists()

    def test_run_deterministic_given_seed(self, capsys):
        main(["run", "fig7", "--scale", "smoke", "--seed", "5"])
        first = capsys.readouterr().out
        main(["run", "fig7", "--scale", "smoke", "--seed", "5"])
        second = capsys.readouterr().out
        # Strip the timing line, which legitimately differs between runs.
        strip = lambda text: "\n".join(l for l in text.splitlines() if "completed in" not in l)
        assert strip(first) == strip(second)


@pytest.fixture
def spec_file(tmp_path):
    """A tiny RunSpec JSON file (3 devices, 2 rounds) for CLI smoke runs."""
    spec = {
        "strategy": "fedavg",
        "dataset": "device_capture",
        "dataset_kwargs": {"devices": ["Pixel5", "S6", "G7"]},
        "scale": "smoke",
        "config_overrides": {"num_rounds": 2},
        "seeds": [0],
    }
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec))
    return str(path)


class TestBench:
    def test_bench_from_spec_file(self, spec_file, capsys):
        assert main(["bench", "--spec", spec_file]) == 0
        out = capsys.readouterr().out
        assert "bench" in out and "fedavg/device_capture" in out
        assert "worst_case" in out

    def test_bench_cli_overrides(self, spec_file, capsys):
        assert main(["bench", "--spec", spec_file, "--strategy", "heteroswitch",
                     "--rounds", "1"]) == 0
        out = capsys.readouterr().out
        assert "heteroswitch/device_capture" in out

    def test_bench_writes_report(self, spec_file, tmp_path, capsys):
        out_dir = tmp_path / "report"
        assert main(["bench", "--spec", spec_file, "--output", str(out_dir)]) == 0
        assert (out_dir / "report.md").exists()
        assert (out_dir / "bench.csv").exists()

    def test_bench_missing_spec_file_fails_cleanly(self, capsys):
        assert main(["bench", "--spec", "/nonexistent/spec.json"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot read spec file")

    def test_bench_invalid_json_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["bench", "--spec", str(path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_bench_unknown_strategy_in_spec_lists_available(self, tmp_path, capsys):
        path = tmp_path / "typo.json"
        path.write_text(json.dumps({"strategy": "heteroswich"}))
        assert main(["bench", "--spec", str(path)]) == 2
        err = capsys.readouterr().err
        assert "unknown strategy 'heteroswich'" in err and "heteroswitch" in err

    def test_bench_invalid_cli_override_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "central.json"
        path.write_text(json.dumps({"kind": "centralized", "dataset": "scenes"}))
        # --rounds adds a config override, which centralized specs reject.
        assert main(["bench", "--spec", str(path), "--rounds", "3"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: invalid spec after CLI overrides")

    def test_bench_deterministic_given_seed(self, spec_file, capsys):
        main(["bench", "--spec", spec_file])
        first = capsys.readouterr().out
        main(["bench", "--spec", spec_file])
        second = capsys.readouterr().out
        strip = lambda text: "\n".join(l for l in text.splitlines() if "completed in" not in l)
        assert strip(first) == strip(second)

    def test_bench_workers_without_parallel_executor_fails_cleanly(self, spec_file, capsys):
        """--workers on an (implicitly) serial run would silently do nothing."""
        assert main(["bench", "--spec", spec_file, "--workers", "4"]) == 2
        err = capsys.readouterr().err
        assert "--workers has no effect with the serial executor" in err

    def test_bench_parallel_executor_matches_serial(self, spec_file, capsys):
        """--executor/--workers change the wall clock, never the numbers."""
        assert main(["bench", "--spec", spec_file]) == 0
        serial = capsys.readouterr().out
        assert main(["bench", "--spec", spec_file, "--executor", "thread",
                     "--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        strip = lambda text: "\n".join(l for l in text.splitlines() if "completed in" not in l)
        assert strip(serial) == strip(parallel)


class TestCaptureCacheFlag:
    def test_capture_cache_flag_parses(self):
        args = build_parser().parse_args(
            ["bench", "--strategy", "fedavg", "--capture-cache", "cc"])
        assert args.capture_cache == "cc"

    def test_bench_with_capture_cache_populates_and_reuses(self, spec_file, tmp_path, capsys):
        cache_dir = tmp_path / "capture-cache"
        assert main(["bench", "--spec", spec_file, "--capture-cache", str(cache_dir)]) == 0
        first = capsys.readouterr().out
        entries = list(cache_dir.glob("*.npz"))
        assert len(entries) == 6  # 3 devices x train/test
        assert main(["bench", "--spec", spec_file, "--capture-cache", str(cache_dir)]) == 0
        second = capsys.readouterr().out
        strip = lambda text: "\n".join(l for l in text.splitlines() if "completed in" not in l)
        assert strip(first) == strip(second)
        assert list(cache_dir.glob("*.npz")) == entries

    def test_capture_cache_rejected_for_unsupported_dataset(self, spec_file, capsys):
        assert main(["bench", "--spec", spec_file, "--dataset", "synthetic_cifar",
                     "--capture-cache", "cc"]) == 2
        err = capsys.readouterr().err
        assert "--capture-cache is not supported" in err

    def test_capture_cache_is_result_neutral_in_store(self, spec_file, tmp_path):
        """A run stored without a cache is found again when one is added."""
        import json as json_module

        from repro.runtime import RunSpec
        from repro.store.run_store import spec_hash

        spec = RunSpec.from_dict(json_module.loads(open(spec_file).read()))
        cached = spec.with_overrides(
            dataset_kwargs={**spec.dataset_kwargs, "capture_cache": str(tmp_path)})
        assert spec_hash(cached) == spec_hash(spec)


class TestVersion:
    def test_version_flag_prints_library_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {repro.__version__}" in capsys.readouterr().out


class TestStoreFlags:
    def test_store_flags_parse(self):
        args = build_parser().parse_args(
            ["bench", "--store", "runs", "--checkpoint-every", "5", "--resume"])
        assert args.store == "runs"
        assert args.checkpoint_every == 5
        assert args.resume is True

    def test_bench_with_store_persists_run(self, spec_file, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(["bench", "--spec", spec_file, "--store", str(store),
                     "--checkpoint-every", "1"]) == 0
        out = capsys.readouterr().out
        assert "run store" in out
        [run_dir] = [p for p in store.iterdir() if p.is_dir()]
        assert (run_dir / "manifest.json").exists()
        assert (run_dir / "result.json").exists()
        assert (run_dir / "checkpoints" / "final.npz").exists()

    def test_bench_resume_skips_completed_run(self, spec_file, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["bench", "--spec", spec_file, "--store", store]) == 0
        first = capsys.readouterr().out
        assert main(["bench", "--spec", spec_file, "--store", store,
                     "--resume"]) == 0
        second = capsys.readouterr().out
        strip = lambda text: "\n".join(l for l in text.splitlines()
                                       if "completed in" not in l)
        assert strip(first) == strip(second)

    def test_negative_checkpoint_every_fails_cleanly(self, spec_file, capsys):
        assert main(["bench", "--spec", spec_file, "--checkpoint-every", "-2"]) == 2
        assert "checkpoint_every" in capsys.readouterr().err

    def test_incompatible_checkpoint_fails_cleanly_on_resume(self, spec_file,
                                                             tmp_path, capsys):
        """A checkpoint from a different format version exits 2 with the
        version message, not a traceback."""
        import json

        import numpy as np

        store = str(tmp_path / "store")
        # Create a partial run: manifest + one checkpoint, no result.
        assert main(["bench", "--spec", spec_file, "--store", store,
                     "--checkpoint-every", "1"]) == 0
        capsys.readouterr()
        from repro.store import RunStore

        [entry] = RunStore(store).list_runs()
        entry.result_path.unlink()
        # Rewrite the newest checkpoint under a bogus format version.
        meta = {"format_version": 99, "repro_version": "9.9.9", "meta": {},
                "state": {"__dict__": []}}
        blob = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        np.savez(entry.checkpoint_dir / "final.npz", **{"__checkpoint_meta__": blob})
        assert main(["bench", "--spec", spec_file, "--store", store,
                     "--resume"]) == 2
        err = capsys.readouterr().err
        assert "format version 99" in err


class TestRunsCommand:
    def test_runs_list_empty_store(self, tmp_path, capsys):
        assert main(["runs", "list", "--store", str(tmp_path / "nothing")]) == 0
        assert "no runs" in capsys.readouterr().out

    def test_runs_list_shows_completed_run(self, spec_file, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["bench", "--spec", spec_file, "--store", store,
                     "--checkpoint-every", "1"]) == 0
        capsys.readouterr()
        assert main(["runs", "list", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "fedavg-device_capture" in out
        assert "completed" in out
        assert "2/2" in out  # rounds completed / total

    def test_runs_show_prints_manifest_and_fingerprint(self, spec_file, tmp_path,
                                                       capsys):
        store = str(tmp_path / "store")
        assert main(["bench", "--spec", spec_file, "--store", store,
                     "--checkpoint-every", "1"]) == 0
        capsys.readouterr()
        from repro.store import RunStore

        [entry] = RunStore(store).list_runs()
        assert main(["runs", "show", entry.run_id, "--store", store]) == 0
        out = capsys.readouterr().out
        assert "spec_hash" in out
        assert "fingerprint:" in out
        assert "final.npz" in out

    def test_runs_show_unknown_id_fails_cleanly(self, tmp_path, capsys):
        assert main(["runs", "show", "ghost", "--store",
                     str(tmp_path / "store")]) == 2
        assert "no run 'ghost'" in capsys.readouterr().err


class TestSweep:
    def test_sweep_over_strategies_and_seeds(self, spec_file, capsys):
        assert main(["sweep", "--spec", spec_file, "--strategies", "fedavg",
                     "heteroswitch", "--seeds", "0", "1"]) == 0
        out = capsys.readouterr().out
        assert "sweep" in out
        # One row per (strategy, seed) plus aggregate mean/std scalars.
        assert out.count("| fedavg |") == 2
        assert out.count("| heteroswitch |") == 2
        assert "fedavg_average_std" in out

    def test_sweep_writes_report(self, spec_file, tmp_path, capsys):
        out_dir = tmp_path / "report"
        assert main(["sweep", "--spec", spec_file, "--output", str(out_dir)]) == 0
        assert (out_dir / "report.md").exists()
        assert (out_dir / "sweep.csv").exists()
