"""Setuptools shim.

The offline environment used for this reproduction has no ``wheel`` package,
so PEP 660 editable installs (which need ``bdist_wheel``) fail.  Keeping a
``setup.py`` allows the legacy editable path:

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
