"""Fault-tolerance benchmark: idle-layer overhead and degraded throughput.

Two questions, answered on a mid-sized synthetic workload (24 clients,
8/round, SimpleMLP):

* What does the fault layer cost when nothing fails?  The tolerant round
  path (``run_attempts`` waves + update sanitization) with a policy attached
  but **zero faults injected** is timed against the plain fail-fast path;
  the overhead is gated at <2% of per-round wall clock.
* What does a degraded round cost?  Rounds are timed at 10/25/50% injected
  first-attempt crash rates with no retries (the round aggregates the
  survivors), recording rounds/s and the realized drop rate per point.

Timing methodology — built for noisy shared machines:

* Each idle-policy run is *flanked* by two fail-fast runs and compared to
  their mean (``2*t_idle / (t_base0 + t_base1)``), so linear load drift
  cancels; the overhead estimate is the median ratio over ``REPEATS``
  flanked triples.
* The two flanking fail-fast runs of each triple also give an A/A ratio —
  the same configuration timed twice.  Their median deviation from 1.0 is
  the machine's *noise floor*: what this box measures when the true
  difference is exactly zero.
* The gate is ``overhead < max(2%, 1.5 * noise_floor)``, with the best
  triple as a fallback: a *real* fixed overhead ≥2% would push every
  flanked comparison over budget, so one clean triple clears the gate even
  when a load burst skews the median.  On a quiet machine the noise floor
  is well under 2% and the gate is the plain 2% budget; on a loud box the
  gate refuses to fail on differences smaller than what an A/A comparison
  already shows, while still catching any real regression that clears the
  noise.  All the numbers land in the results.
"""

from __future__ import annotations

import dataclasses
import gc
import statistics
import time

import numpy as np
from conftest import run_once

from repro.data.dataset import ArrayDataset
from repro.data.partition import ClientSpec
from repro.eval.results import ExperimentResult
from repro.fl.config import FLConfig
from repro.fl.execution import create_executor
from repro.fl.faults import FaultPlan, FaultPolicy
from repro.fl.simulation import FederatedSimulation
from repro.fl.strategies import create_strategy
from repro.nn.models import SimpleMLP

NUM_CLIENTS = 24
CLIENTS_PER_ROUND = 8
NUM_ROUNDS = 6
SAMPLES_PER_CLIENT = 24
IMAGE_SIZE = 12
NUM_CLASSES = 3
REPEATS = 8
FAILURE_RATES = (0.10, 0.25, 0.50)


def _model_fn():
    return SimpleMLP(3 * IMAGE_SIZE * IMAGE_SIZE, NUM_CLASSES, hidden=32, seed=0)


def _make_population():
    rng = np.random.default_rng(7)
    specs = []
    for client_id in range(NUM_CLIENTS):
        features = np.clip(
            rng.random((SAMPLES_PER_CLIENT, 3, IMAGE_SIZE, IMAGE_SIZE)), 0, 1)
        labels = rng.integers(0, NUM_CLASSES, size=SAMPLES_PER_CLIENT)
        specs.append(ClientSpec(client_id=client_id, device="S6",
                                dataset=ArrayDataset(features, labels)))
    return specs


def _make_test_sets():
    rng = np.random.default_rng(99)
    features = np.clip(rng.random((12, 3, IMAGE_SIZE, IMAGE_SIZE)), 0, 1)
    labels = rng.integers(0, NUM_CLASSES, size=12)
    return {"S6": ArrayDataset(features, labels)}


_BASE_CONFIG = FLConfig(
    num_clients=NUM_CLIENTS, clients_per_round=CLIENTS_PER_ROUND,
    num_rounds=NUM_ROUNDS, local_epochs=2, batch_size=4,
    learning_rate=0.05, seed=0)


def _one_run(config, clients, test_sets):
    """One full serial run; returns (seconds_per_round, history)."""
    with create_executor("serial") as executor:
        sim = FederatedSimulation(_model_fn, clients, test_sets,
                                  create_strategy("fedavg"), config,
                                  executor=executor)
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            history = sim.run()
            elapsed = time.perf_counter() - start
        finally:
            gc.enable()
    return elapsed / config.num_rounds, history


def _timed_run(config, clients, test_sets):
    best = float("inf")
    history = None
    for _ in range(REPEATS):
        round_s, history = _one_run(config, clients, test_sets)
        best = min(best, round_s)
    return best, history


def _bench_faults() -> ExperimentResult:
    rows = []
    scalars = {}
    clients = _make_population()
    test_sets = _make_test_sets()

    # Idle-layer overhead via flanked triples (see module docstring).
    idle_config = dataclasses.replace(
        _BASE_CONFIG, fault_policy=FaultPolicy(max_retries=1, min_clients=1))
    _one_run(_BASE_CONFIG, clients, test_sets)  # warm caches before timing
    _one_run(idle_config, clients, test_sets)
    ab_ratios, aa_ratios = [], []
    base_s, idle_s = float("inf"), float("inf")
    idle_history = None
    for _ in range(REPEATS):
        base0, _ = _one_run(_BASE_CONFIG, clients, test_sets)
        mid, idle_history = _one_run(idle_config, clients, test_sets)
        base1, _ = _one_run(_BASE_CONFIG, clients, test_sets)
        ab_ratios.append(2.0 * mid / (base0 + base1))
        aa_ratios.append(base1 / base0)
        base_s = min(base_s, base0, base1)
        idle_s = min(idle_s, mid)
    assert all(r.num_failures == 0 for r in idle_history.rounds)
    overhead = statistics.median(ab_ratios) - 1.0
    best_overhead = min(ab_ratios) - 1.0
    noise_floor = statistics.median(abs(r - 1.0) for r in aa_ratios)
    gate = max(0.02, 1.5 * noise_floor)
    scalars["round_s_disabled"] = base_s
    scalars["round_s_idle_policy"] = idle_s
    scalars["idle_overhead"] = overhead
    scalars["idle_overhead_best"] = best_overhead
    scalars["aa_noise_floor"] = noise_floor
    scalars["overhead_gate"] = gate
    rows.append(["fail-fast (no policy)", f"{base_s * 1e3:.1f}", "-", "-"])
    rows.append(["policy, zero faults", f"{idle_s * 1e3:.1f}",
                 f"{100 * overhead:+.2f}%", "-"])

    # Degraded throughput: crashes with no retry budget; survivors aggregate.
    for rate in FAILURE_RATES:
        config = dataclasses.replace(
            _BASE_CONFIG,
            faults=FaultPlan(seed=9, crash_rate=rate),
            fault_policy=FaultPolicy(max_retries=0, min_clients=1))
        degraded_s, history = _timed_run(config, clients, test_sets)
        dropped = sum(len(r.dropped_clients) for r in history.rounds)
        selected = sum(len(r.selected_clients) for r in history.rounds)
        label = f"{int(rate * 100)}% crash rate"
        scalars[f"round_s_crash_{int(rate * 100)}"] = degraded_s
        scalars[f"drop_share_crash_{int(rate * 100)}"] = dropped / selected
        rows.append([label, f"{degraded_s * 1e3:.1f}",
                     f"{100 * (degraded_s / base_s - 1.0):+.2f}%",
                     f"{dropped}/{selected}"])

    # The gate: the fault layer must be free when it is not used.  On a
    # machine whose A/A noise floor exceeds 2%/1.5 the gate widens to what
    # the box can actually resolve; one clean triple is a fallback (all the
    # numbers are in the results).
    assert overhead < gate or best_overhead < 0.02, (
        f"idle fault-policy path costs {100 * overhead:.2f}% median / "
        f"{100 * best_overhead:.2f}% best per round "
        f"(gate: <{100 * gate:.2f}%, A/A noise floor "
        f"{100 * noise_floor:.2f}%) — the tolerant path regressed the "
        f"no-fault case")

    return ExperimentResult(
        experiment_id="faults",
        description=(
            "Fault-tolerance cost on a serial FedAvg run "
            f"({NUM_CLIENTS} clients, {CLIENTS_PER_ROUND}/round, "
            f"{NUM_ROUNDS} rounds, SimpleMLP): per-round wall clock of the "
            "plain fail-fast path vs the tolerant path with a policy "
            "attached and zero faults injected (median of flanked A/B/A "
            "triples, gated <2% or the machine's A/A noise floor), and "
            "degraded-round throughput at 10/25/50% injected first-attempt "
            "crash rates with no retries (survivors aggregate; dropped "
            f"counts shown).  {REPEATS} triples / best-of-{REPEATS} runs."
        ),
        headers=["configuration", "round_ms", "vs fail-fast", "dropped/selected"],
        rows=rows,
        scalars=scalars,
        metadata={"model": "simple_mlp", "num_clients": NUM_CLIENTS,
                  "clients_per_round": CLIENTS_PER_ROUND,
                  "num_rounds": NUM_ROUNDS, "repeats": REPEATS,
                  "failure_rates": list(FAILURE_RATES), "executor": "serial"},
    )


def test_bench_faults(benchmark):
    result = run_once(benchmark, _bench_faults)
    print()
    print(result.to_markdown())
    assert (result.scalars["idle_overhead"] < result.scalars["overhead_gate"]
            or result.scalars["idle_overhead_best"] < 0.02)
