"""Benchmark E3 — Fig. 2: cross-device degradation with RAW (no-ISP) data.

Paper shape: RAW-only training degrades more across devices than ISP-processed
training (the ISP partially normalizes hardware differences).
"""

from conftest import run_once

from repro.eval.experiments import fig2_raw_degradation, table2_cross_device


def test_bench_fig2_raw_degradation(benchmark, bench_scale):
    result = run_once(benchmark, fig2_raw_degradation, scale=bench_scale, seed=0)
    print()
    print(result.to_markdown())

    raw_mean = result.scalar("mean_degradation")
    assert raw_mean >= -0.05

    # Shape check vs the processed-image matrix: RAW heterogeneity should not be
    # milder than processed-image heterogeneity by a wide margin.
    processed = table2_cross_device(scale=bench_scale, seed=0)
    assert raw_mean >= processed.scalar("mean_degradation") - 0.15
