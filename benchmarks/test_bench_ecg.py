"""Benchmark E12 — Section 6.6: ECG heart-rate deviation across sensor types.

Paper shape: FedAvg's heart-rate predictions deviate strongly across sensor
types (31.8% average); HeteroSwitch with a random Gaussian filter reduces the
deviation (to 18.3%).
"""

from conftest import run_once

from repro.eval.experiments import ecg_heart_rate


def test_bench_ecg_heart_rate(benchmark, bench_scale):
    scale = bench_scale.with_overrides(num_rounds=max(8, bench_scale.num_rounds))
    result = run_once(benchmark, ecg_heart_rate, scale=scale,
                      methods=("fedavg", "heteroswitch"), window_size=64, seed=0)
    print()
    print(result.to_markdown())

    fedavg_dev = result.scalar("fedavg_mean_deviation")
    hetero_dev = result.scalar("heteroswitch_mean_deviation")
    assert fedavg_dev >= 0.0 and hetero_dev >= 0.0

    # Shape check: HeteroSwitch's deviation is not meaningfully worse than
    # FedAvg's (the paper reports a substantial reduction).
    assert hetero_dev <= fedavg_dev + 0.10
