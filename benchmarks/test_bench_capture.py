"""Capture-throughput benchmark: scalar vs batched ISP engine, cold vs cached.

Times ``build_device_datasets`` at bench scale four ways — per-scene scalar
reference loop, batched engine, batched with a cold capture cache (miss +
store), and batched with a warm cache (pure hits) — while asserting the
batched outputs stay bitwise identical to the scalar path and cache hits do
no ISP work.  The recorded table is the PR's headline evidence: the batched
engine must beat the scalar loop outright, and warm-cache rebuilds (the
repeated-sweep workload that motivated the cache) are near-instant.
"""

from __future__ import annotations

import time

import numpy as np

from repro.data.capture import (
    CaptureConfig,
    DeviceDatasetBundle,
    build_device_datasets,
    capture_with_device_scalar,
    derive_capture_seeds,
)
from repro.data.capture_cache import CaptureCache
from repro.data.scenes import generate_scene_dataset
from repro.devices.profiles import DEVICE_PROFILES
from conftest import run_once

from repro.eval.results import ExperimentResult


def _build_scalar(scale) -> DeviceDatasetBundle:
    """``build_device_datasets`` routed through the per-scene scalar loop."""
    train_scenes, train_labels = generate_scene_dataset(
        scale.samples_per_class_train, num_classes=scale.num_classes,
        image_size=scale.scene_size, seed=0)
    test_scenes, test_labels = generate_scene_dataset(
        scale.samples_per_class_test, num_classes=scale.num_classes,
        image_size=scale.scene_size, seed=10_000)
    train, test = {}, {}
    for offset, (name, profile) in enumerate(DEVICE_PROFILES.items()):
        train_seed, test_seed = derive_capture_seeds(0, offset)
        train[name] = capture_with_device_scalar(
            train_scenes, train_labels, profile,
            CaptureConfig(image_size=scale.image_size, seed=train_seed))
        test[name] = capture_with_device_scalar(
            test_scenes, test_labels, profile,
            CaptureConfig(image_size=scale.image_size, seed=test_seed))
    return DeviceDatasetBundle(train=train, test=test,
                               num_classes=scale.num_classes,
                               image_size=scale.image_size)


def _build_batched(scale, cache=None) -> DeviceDatasetBundle:
    return build_device_datasets(
        samples_per_class_train=scale.samples_per_class_train,
        samples_per_class_test=scale.samples_per_class_test,
        num_classes=scale.num_classes,
        image_size=scale.image_size,
        scene_size=scale.scene_size,
        seed=0,
        cache=cache,
    )


def _capture_throughput(scale, cache_root) -> ExperimentResult:
    timings = {}

    start = time.perf_counter()
    scalar_bundle = _build_scalar(scale)
    timings["scalar_loop"] = time.perf_counter() - start

    start = time.perf_counter()
    batched_bundle = _build_batched(scale)
    timings["batched"] = time.perf_counter() - start

    cache = CaptureCache(cache_root)
    start = time.perf_counter()
    miss_bundle = _build_batched(scale, cache=cache)
    timings["cache_miss"] = time.perf_counter() - start

    start = time.perf_counter()
    hit_bundle = _build_batched(scale, cache=cache)
    timings["cache_hit"] = time.perf_counter() - start

    # Correctness gates: bitwise identity across all four paths, and the warm
    # build must be pure cache hits (no ISP work re-run).
    assert cache.stats["misses"] == len(DEVICE_PROFILES) * 2
    assert cache.stats["hits"] == len(DEVICE_PROFILES) * 2
    for name in scalar_bundle.train:
        for split in ("train", "test"):
            reference = getattr(scalar_bundle, split)[name].features
            for bundle in (batched_bundle, miss_bundle, hit_bundle):
                np.testing.assert_array_equal(getattr(bundle, split)[name].features,
                                              reference)

    # Performance gates: batched strictly beats the scalar loop; warm-cache
    # rebuilds are near-instant (a small fraction of one batched build).
    assert timings["batched"] < timings["scalar_loop"], (
        f"batched capture ({timings['batched']:.3f}s) slower than the scalar "
        f"loop ({timings['scalar_loop']:.3f}s)")
    assert timings["cache_hit"] < 0.25 * timings["batched"], (
        f"cache hits not near-instant: {timings['cache_hit']:.3f}s vs "
        f"batched {timings['batched']:.3f}s")

    speedup_batched = timings["scalar_loop"] / timings["batched"]
    speedup_cached = timings["scalar_loop"] / max(timings["cache_hit"], 1e-9)
    rows = [
        ["scalar per-scene loop", f"{timings['scalar_loop']:.3f}", "1.0"],
        ["batched engine (cold)", f"{timings['batched']:.3f}", f"{speedup_batched:.1f}"],
        ["batched + cache (miss)", f"{timings['cache_miss']:.3f}",
         f"{timings['scalar_loop'] / timings['cache_miss']:.1f}"],
        ["batched + cache (hit)", f"{timings['cache_hit']:.3f}", f"{speedup_cached:.1f}"],
    ]
    return ExperimentResult(
        experiment_id="capture",
        description=(
            "Capture throughput at bench scale: scene -> RAW -> ISP -> tensor for "
            f"{len(DEVICE_PROFILES)} devices (train+test pools), scalar loop vs "
            "batched engine vs persistent capture cache. All paths are bitwise "
            "identical; repeated sweeps over one fleet hit the cache and re-run "
            "no ISP work."
        ),
        headers=["path", "wall_clock_s", "speedup_vs_scalar"],
        rows=rows,
        scalars={
            "scalar_loop_s": timings["scalar_loop"],
            "batched_s": timings["batched"],
            "cache_miss_s": timings["cache_miss"],
            "cache_hit_s": timings["cache_hit"],
            "speedup_batched": speedup_batched,
            "speedup_cached": speedup_cached,
        },
        metadata={"devices": list(DEVICE_PROFILES), "scale": scale.name},
    )


def test_bench_capture_throughput(benchmark, bench_scale, tmp_path):
    result = run_once(benchmark, _capture_throughput, bench_scale, tmp_path / "capture-cache")
    assert result.scalars["speedup_cached"] >= 3.0
