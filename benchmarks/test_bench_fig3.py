"""Benchmark E4 — Fig. 3 / Table 3: per-ISP-stage ablation.

Paper shape: substituting or omitting single ISP stages degrades accuracy, with
the colour (white-balance) and tone transformation stages the most damaging
(56.0% and 49.2% in the paper).
"""

from conftest import run_once

from repro.eval.experiments import fig3_isp_stage_ablation


def test_bench_fig3_isp_stage_ablation(benchmark, bench_scale):
    result = run_once(benchmark, fig3_isp_stage_ablation, scale=bench_scale,
                      devices=["Pixel5", "S6", "G7"], seed=0)
    print()
    print(result.to_markdown())

    assert len(result.rows) == 12  # six stages x two options
    assert result.scalar("baseline_accuracy") > 0.0

    # Shape check: substituting ISP stages shifts accuracy.  The paper's stronger
    # claim — colour/tone are the *most* damaging stages (56% / 49%) — emerges at
    # paper scale (full-resolution captures, MobileNetV3, 1000 rounds); at bench
    # scale we assert the ablation machinery produces a measurable, finite spread.
    degradations = [row[2] for row in result.rows]
    assert all(abs(value) < 1.5 for value in degradations)
    assert max(degradations) > min(degradations)
    color_tone = result.scalar("mean_color_tone_degradation")
    other = result.scalar("mean_other_degradation")
    assert abs(color_tone) < 1.5 and abs(other) < 1.5
