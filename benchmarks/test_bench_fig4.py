"""Benchmark E5 — Fig. 4: fairness toward dominant devices.

Paper shape: with market-share participation the global model is biased toward
the dominant devices (Galaxy S9/S6); non-dominant devices lose 3.2-16.9%
accuracy relative to them.
"""

from conftest import run_once

from repro.eval.experiments import fig4_fairness


def test_bench_fig4_fairness(benchmark, bench_scale):
    result = run_once(benchmark, fig4_fairness, scale=bench_scale, seed=0)
    print()
    print(result.to_markdown())

    assert result.scalar("dominant_accuracy") > 0.0
    # Shape check: on average the non-dominant devices do not beat the dominant
    # ones (the bias direction reported by the paper).
    assert result.scalar("mean_nondominant_degradation") >= -0.10
