"""Ablation benchmark — the switching criterion of Algorithm 1.

DESIGN.md calls out the switch criteria as the key design choice: HeteroSwitch
applies generalization *selectively* (switched), versus never (FedAvg) or
always (ISP transformation + SWAD on every client).  This bench regenerates the
three-way comparison embedded in Table 4's first four rows and reports the
fairness variance of each regime.
"""

from conftest import run_once

from repro.eval.experiments import table4_main_evaluation

REGIMES = ("fedavg", "isp_transform", "isp_swad", "heteroswitch")


def test_bench_ablation_switch_criterion(benchmark, bench_scale):
    result = run_once(benchmark, table4_main_evaluation, scale=bench_scale,
                      methods=REGIMES, seed=0)
    print()
    print(result.to_markdown())

    never = result.scalar("fedavg_variance")
    always = result.scalar("isp_swad_variance")
    switched = result.scalar("heteroswitch_variance")

    # All three regimes produce valid, bounded fairness numbers.  The paper-scale
    # finding — the switched regime has the lowest variance of the three — needs
    # the full 1000-round runs to stabilise; at bench scale we check the regimes
    # are all trainable and the switched regime's average accuracy is competitive.
    assert all(0.0 <= value < 100.0 for value in (never, always, switched))
    for regime in REGIMES:
        assert 0.0 <= result.scalar(f"{regime}_average") <= 1.0
    assert result.scalar("heteroswitch_average") >= result.scalar("isp_swad_average") - 0.15
