"""Fleet-scale round benchmark: clients/round curve on the shm backend.

Runs one FL round at 8, 64 and 256 clients/round over a generated
device-profile population (all 9 paper devices, tiny per-client shards) on
the shared-memory streaming executor and records, per point on the curve:

* round wall clock (broadcast + client training + streaming aggregation),
* the server's peak allocation during aggregation (tracemalloc) — the
  streaming reduction must keep this flat as the fleet grows,
* process RSS after the round (``/proc/self/status``).

At the smallest fleet the shm round is asserted bit-identical to the serial
reference before any number is reported.  Results land in
``results/scale.{md,json}``.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
import tracemalloc

import numpy as np
import pytest
from conftest import run_once

from repro.core.ema import EMALossTracker
from repro.data.dataset import ArrayDataset
from repro.data.partition import ClientSpec
from repro.devices.profiles import market_shares
from repro.eval.results import ExperimentResult
from repro.fl.config import FLConfig
from repro.fl.execution import create_executor
from repro.fl.strategies import create_strategy
from repro.fl.strategies.base import FLContext
from repro.nn.models import SimpleMLP
from repro.nn.serialization import get_weights, state_fingerprint

FLEET_SIZES = (8, 64, 256)
SAMPLES_PER_CLIENT = 6
IMAGE_SIZE = 8
NUM_CLASSES = 3

requires_shm = pytest.mark.skipif(
    sys.platform == "darwin"
    or "fork" not in multiprocessing.get_all_start_methods()
    or not os.path.isdir("/dev/shm"),
    reason="shm executor needs Linux fork + /dev/shm",
)


def _model_fn():
    return SimpleMLP(3 * IMAGE_SIZE * IMAGE_SIZE, NUM_CLASSES, hidden=32, seed=0)


def _make_population(num_clients: int):
    """Synthetic fleet: tiny per-client shards cycling the 9 device profiles."""
    devices = sorted(market_shares())
    rng = np.random.default_rng(7)
    specs = []
    for client_id in range(num_clients):
        features = np.clip(
            rng.random((SAMPLES_PER_CLIENT, 3, IMAGE_SIZE, IMAGE_SIZE)), 0, 1)
        labels = rng.integers(0, NUM_CLASSES, size=SAMPLES_PER_CLIENT)
        specs.append(ClientSpec(client_id=client_id,
                                device=devices[client_id % len(devices)],
                                dataset=ArrayDataset(features, labels)))
    return specs


def _run_round(executor_name: str, num_clients: int):
    """One round; returns (fingerprint, round_s, aggregation peak bytes)."""
    specs = _make_population(num_clients)
    config = FLConfig(num_clients=num_clients, clients_per_round=num_clients,
                      num_rounds=1, local_epochs=1,
                      batch_size=SAMPLES_PER_CLIENT, learning_rate=0.05, seed=0)
    context = FLContext(config=config, ema=EMALossTracker())
    context.round_selection = [spec.client_id for spec in specs]
    strategy = create_strategy("fedavg")
    global_state = get_weights(_model_fn())
    start = time.perf_counter()
    with create_executor(executor_name) as executor:
        if getattr(executor, "streaming", False):
            stream = executor.iter_round(strategy, _model_fn, specs,
                                         global_state, context)
            tracemalloc.start()
            new_state, results = strategy.aggregate_stream(
                global_state, specs, stream, context)
            _, agg_peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        else:
            results = executor.run_round(strategy, _model_fn, specs,
                                         global_state, context)
            tracemalloc.start()
            new_state = strategy.aggregate(global_state, results, context)
            _, agg_peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
    round_s = time.perf_counter() - start
    assert len(results) == num_clients
    return state_fingerprint(new_state), round_s, agg_peak


def _rss_kb() -> int:
    with open("/proc/self/status", encoding="ascii") as handle:
        for line in handle:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    return 0  # pragma: no cover - /proc always has VmRSS on Linux


def _fleet_scale() -> ExperimentResult:
    # Correctness gate first: at the smallest fleet the shm round must be
    # bit-identical to the serial reference.
    serial_print, _, _ = _run_round("serial", FLEET_SIZES[0])
    shm_print, _, _ = _run_round("shm", FLEET_SIZES[0])
    assert shm_print == serial_print, (
        f"shm round diverged from serial at {FLEET_SIZES[0]} clients "
        f"({shm_print[:12]} vs {serial_print[:12]})")

    rows = []
    scalars = {}
    peaks = {}
    for num_clients in FLEET_SIZES:
        _, round_s, agg_peak = _run_round("shm", num_clients)
        rss_kb = _rss_kb()
        peaks[num_clients] = agg_peak
        rows.append([str(num_clients), f"{round_s * 1e3:.1f}",
                     f"{agg_peak / 1024:.1f}", f"{rss_kb / 1024:.1f}"])
        scalars[f"round_s_{num_clients}"] = round_s
        scalars[f"agg_peak_bytes_{num_clients}"] = agg_peak
        scalars[f"rss_kb_{num_clients}"] = rss_kb

    # The headline guarantee: streaming aggregation's server peak is flat in
    # clients/round.  A materialized reduction would scale linearly (32x from
    # 8 to 256); 2x absorbs allocator/bookkeeping noise only.
    flatness = peaks[FLEET_SIZES[-1]] / max(peaks[FLEET_SIZES[0]], 1)
    scalars["agg_peak_growth"] = flatness
    assert flatness < 2.0, (
        f"aggregation peak grew {flatness:.2f}x from {FLEET_SIZES[0]} to "
        f"{FLEET_SIZES[-1]} clients/round — streaming reduction regressed")

    return ExperimentResult(
        experiment_id="scale",
        description=(
            "Fleet-scale FL round on the shared-memory streaming executor "
            "('shm'): one FedAvg round over a generated 9-device population "
            f"at {', '.join(str(n) for n in FLEET_SIZES)} clients/round "
            "(SimpleMLP, tiny per-client shards).  Round wall clock, the "
            "server's tracemalloc peak during streaming aggregation (must "
            "stay flat — O(model), not O(clients x model)) and process RSS "
            "after the round.  The shm backend is asserted bit-identical to "
            "the serial reference at the smallest fleet before timing."
        ),
        headers=["clients_per_round", "round_ms", "agg_peak_kib", "rss_mib"],
        rows=rows,
        scalars=scalars,
        metadata={"model": "simple_mlp", "samples_per_client": SAMPLES_PER_CLIENT,
                  "image_size": IMAGE_SIZE, "executor": "shm",
                  "fleet_sizes": list(FLEET_SIZES)},
    )


@requires_shm
def test_bench_fleet_scale(benchmark):
    result = run_once(benchmark, _fleet_scale)
    print()
    print(result.to_markdown())
    assert result.scalars["agg_peak_growth"] < 2.0
