"""Benchmark E1 — Fig. 1: homogeneous vs heterogeneous FL clients.

Paper shape: FL over heterogeneous device types loses accuracy relative to an
all-same-device population (23.5% average degradation in the paper).
"""

from conftest import run_once

from repro.eval.experiments import fig1_homo_vs_hetero


def test_bench_fig1_homo_vs_hetero(benchmark, bench_scale):
    result = run_once(benchmark, fig1_homo_vs_hetero, scale=bench_scale, seed=0)
    print()
    print(result.to_markdown())

    homo = result.scalar("homogeneous_accuracy")
    hetero = result.scalar("heterogeneous_accuracy")
    assert 0.0 <= hetero <= 1.0 and 0.0 <= homo <= 1.0
    # Shape check: the homogeneous setting should not be (meaningfully) worse
    # than the heterogeneous mixture evaluated across all device types.
    assert homo >= hetero - 0.10
