"""Benchmark E13 — Fig. 9 (appendix): hyperparameter sensitivity of the FL setup.

Paper shape: accuracy is sensitive to the learning rate and the number of
communication rounds; the selected configuration (lr=0.1, B=10, E=1, T=1000 at
paper scale) sits at or near the best of each sweep.
"""

from conftest import run_once

from repro.eval.experiments import fig9_hyperparameter_sensitivity


def test_bench_fig9_hyperparameter_sensitivity(benchmark, bench_scale):
    sweeps = {
        "learning_rate": (0.002, 0.02, 0.2),
        "batch_size": (2, 6, 12),
        "local_epochs": (1, 3),
        "num_rounds_factor": (0.2, 1.0),
    }
    result = run_once(benchmark, fig9_hyperparameter_sensitivity, scale=bench_scale,
                      sweeps=sweeps, seed=0)
    print()
    print(result.to_markdown())

    accuracies = [row[2] for row in result.rows]
    assert all(0.0 <= value <= 1.0 for value in accuracies)
    # Shape check: the sweep produces a non-trivial spread — hyperparameters matter.
    assert max(accuracies) > min(accuracies)

    # More communication rounds should not hurt at this scale.
    base_rounds = result.metadata["base"]["num_rounds"]
    few = result.scalars[f"num_rounds={max(1, int(round(base_rounds * 0.2)))}"]
    full = result.scalars[f"num_rounds={base_rounds}"]
    assert full >= few - 0.10
