"""Shared configuration for the benchmark harness.

Each benchmark regenerates one table or figure of the paper (see DESIGN.md's
experiment index) by running the corresponding experiment runner and printing
the regenerated rows.  pytest-benchmark records the wall-clock cost of the
full regeneration (one iteration — these are experiment pipelines, not
micro-benchmarks).

The scale can be tuned with the ``REPRO_BENCH_SCALE`` environment variable:

* ``bench`` (default) — a middle ground sized so the whole suite finishes in
  minutes on a laptop CPU while still showing the paper's qualitative shapes.
* ``smoke``           — the test-suite scale (fastest, weakest signal).
* ``default`` / ``paper`` — the larger presets from :mod:`repro.eval.scale`.
"""

from __future__ import annotations

import os

import pytest

from repro.eval.scale import SCALES, ExperimentScale, get_scale

# A preset between "smoke" and "default": full 9-device coverage with a small
# CNN-free model so every table/figure regenerates in tens of seconds.
BENCH_SCALE = ExperimentScale(
    name="bench",
    samples_per_class_train=8,
    samples_per_class_test=6,
    num_classes=6,
    image_size=16,
    scene_size=32,
    num_clients=24,
    clients_per_round=8,
    num_rounds=24,
    local_epochs=1,
    batch_size=6,
    learning_rate=0.025,
    central_epochs=12,
    model_name="simple_mlp",
    width_mult=1.0,
)


def resolve_bench_scale() -> ExperimentScale:
    """Pick the benchmark scale from the environment (default: ``bench``)."""
    name = os.environ.get("REPRO_BENCH_SCALE", "bench")
    if name == "bench":
        return BENCH_SCALE
    return get_scale(name)


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    return resolve_bench_scale()


RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The regenerated table is also written to ``benchmarks/results/<id>.md``
    (human-readable, survives pytest's stdout capture) and
    ``benchmarks/results/<id>.json`` (the full ``ExperimentResult`` record,
    reloadable via ``ExperimentResult.from_json`` for downstream tooling).
    """
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
    experiment_id = getattr(result, "experiment_id", None)
    if experiment_id is not None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{experiment_id}.md")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(result.to_markdown() + "\n")
        json_path = os.path.join(RESULTS_DIR, f"{experiment_id}.json")
        with open(json_path, "w", encoding="utf-8") as handle:
            handle.write(result.to_json() + "\n")
    return result
