"""Benchmark E6 — Fig. 5: leave-one-device-out domain generalization.

Paper shape: excluding a device from training changes its accuracy in a
device-dependent way — some devices degrade, while older/simpler devices can
even improve — i.e. the per-device effects are *not* uniform.
"""

import numpy as np
from conftest import run_once

from repro.eval.experiments import fig5_domain_generalization


def test_bench_fig5_domain_generalization(benchmark, bench_scale):
    result = run_once(benchmark, fig5_domain_generalization, scale=bench_scale, seed=0)
    print()
    print(result.to_markdown())

    per_device = result.metadata["per_device"]
    assert len(per_device) == len(result.metadata["devices"])
    values = np.asarray(list(per_device.values()))
    assert np.isfinite(values).all()
    # Shape check: the effect is heterogeneous across devices (max != min), which
    # is the paper's "inconsistent result" observation for Fig. 5.
    assert result.scalar("max_degradation") >= result.scalar("min_degradation")
