"""Benchmark — asynchronous FL: FedAsync/FedBuff vs synchronous FedAvg.

Not a paper artifact: the event-driven simulator extends the Table 4 workload
with device latency/availability models derived from the Table 1 profiles.
Expected shape:

* all three methods reach comparable accuracy from the same update budget;
* the asynchronous runs finish in less simulated wall-clock than the
  synchronous barrier under a heterogeneous regime (stragglers no longer gate
  every round);
* the "extreme" regime stretches simulated time relative to "mild" and
  increases observed staleness.
"""

from conftest import run_once

from repro.eval.async_eval import async_vs_sync

REGIMES = ("mild", "extreme")
METHODS = ("fedasync", "fedbuff")


def test_bench_async_vs_sync(benchmark, bench_scale):
    result = run_once(benchmark, async_vs_sync, scale=bench_scale,
                      regimes=REGIMES, methods=METHODS, seed=0)
    print()
    print(result.to_markdown())

    assert 0.0 <= result.scalar("fedavg_worst_case") <= 1.0
    for regime in REGIMES:
        assert result.scalar(f"{regime}_fedavg_virtual_hours") > 0.0
        for method in METHODS:
            assert 0.0 <= result.scalar(f"{regime}_{method}_worst_case") <= 1.0
            assert result.scalar(f"{regime}_{method}_virtual_hours") > 0.0
            assert result.scalar(f"{regime}_{method}_mean_staleness") >= 0.0
            # Fixed update budget: every cell trained the same number of
            # client updates as the synchronous reference.
            assert result.scalar(f"{regime}_{method}_updates") == \
                result.metadata["update_budget"]

    for method in METHODS:
        # Heterogeneity stretches the simulated clock.
        assert result.scalar(f"extreme_{method}_virtual_hours") > \
            result.scalar(f"mild_{method}_virtual_hours")
        # Async pipelining beats the synchronous straggler barrier once the
        # latency spread is extreme (under "mild" the gap can go either way
        # at bench scale).
        assert result.scalar(f"extreme_{method}_virtual_hours") < \
            result.scalar("extreme_fedavg_virtual_hours")
