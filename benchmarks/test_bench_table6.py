"""Benchmark E10 — Table 6: FLAIR-like multi-label evaluation.

Paper shape: on the realistic many-device-type dataset, HeteroSwitch reduces
the variance of averaged precision across device types (by 6.3%) while keeping
averaged precision at least as good as FedAvg; FedProx increases variance.
"""

from conftest import run_once

from repro.eval.experiments import table6_flair

METHODS = ("fedavg", "heteroswitch", "qfedavg", "fedprox")


def test_bench_table6_flair(benchmark, bench_scale):
    result = run_once(benchmark, table6_flair, scale=bench_scale, methods=METHODS, seed=0)
    print()
    print(result.to_markdown())

    for method in METHODS:
        ap = result.scalar(f"{method}_averaged_precision")
        assert 0.0 <= ap <= 1.0
        assert result.scalar(f"{method}_variance") >= 0.0

    # Shape check: HeteroSwitch keeps averaged precision competitive with FedAvg
    # (the paper reports +0.2% AP and -6.3% variance).
    assert result.scalar("heteroswitch_averaged_precision") >= (
        result.scalar("fedavg_averaged_precision") - 0.10
    )
