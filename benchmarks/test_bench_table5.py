"""Benchmark E9 — Table 5: FedAvg vs HeteroSwitch across model architectures.

Paper shape: HeteroSwitch improves the worst-case accuracy for every
mobile-friendly architecture (MobileNetV3-small, ShuffleNetV2-x0.5,
SqueezeNet1.1); SqueezeNet fails to learn under FedAvg and recovers with
HeteroSwitch.
"""

from conftest import run_once

from repro.eval.experiments import table5_model_architectures

MODELS = ("mobilenetv3_small", "shufflenet_v2_x0_5", "squeezenet1_1")


def test_bench_table5_model_architectures(benchmark, bench_scale):
    # The architecture sweep uses the real CNN analogues regardless of the
    # bench preset's default model, so shrink the FL budget to keep it tractable.
    scale = bench_scale.with_overrides(num_rounds=max(4, bench_scale.num_rounds // 2),
                                       num_clients=max(12, bench_scale.num_clients // 2),
                                       clients_per_round=max(4, bench_scale.clients_per_round // 2))
    result = run_once(benchmark, table5_model_architectures, scale=scale,
                      model_names=MODELS, methods=("fedavg", "heteroswitch"), seed=0)
    print()
    print(result.to_markdown())

    for model in MODELS:
        fedavg_worst = result.scalar(f"{model}_fedavg_worst_case")
        hetero_worst = result.scalar(f"{model}_heteroswitch_worst_case")
        assert 0.0 <= fedavg_worst <= 1.0 and 0.0 <= hetero_worst <= 1.0
        # Shape check: HeteroSwitch's worst-case accuracy does not collapse
        # relative to FedAvg for any architecture.
        assert hetero_worst >= fedavg_worst - 0.15
