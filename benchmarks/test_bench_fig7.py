"""Benchmark E7 — Fig. 7: robustness of transform-only vs SWA vs SWAD training.

Paper shape: SWAD + random transformation is the most robust of the three
training methods across test-time perturbations, which motivates using SWAD
inside HeteroSwitch.
"""

from conftest import run_once

from repro.eval.experiments import fig7_swad_robustness


def test_bench_fig7_swad_robustness(benchmark, bench_scale):
    result = run_once(benchmark, fig7_swad_robustness, scale=bench_scale,
                      train_degree=0.3, test_degrees=(0.3, 0.6, 0.9), seed=0)
    print()
    print(result.to_markdown())

    transform_only = result.scalar("mean_degradation_transform_only")
    swad = result.scalar("mean_degradation_transform_swad")
    swa = result.scalar("mean_degradation_transform_swa")

    # Shape check: SWAD's mean degradation should not be (meaningfully) worse
    # than training with the transformation alone, and it should be competitive
    # with per-epoch SWA (the paper finds it strictly better).
    assert swad <= transform_only + 0.10
    assert swad <= swa + 0.15
