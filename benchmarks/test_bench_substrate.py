"""Micro-benchmarks of the substrates the experiments run on.

These are conventional pytest-benchmark timings (many iterations) for the
performance-critical building blocks: the ISP pipeline, a device capture, one
forward/backward pass of the primary model, and one FL client update.  They
are not paper artifacts but make regressions in the substrate visible.
"""

import numpy as np
import pytest

from repro.data.capture import CaptureConfig, capture_with_device
from repro.data.dataset import ArrayDataset
from repro.data.scenes import SceneGenerator
from repro.devices.profiles import get_device
from repro.fl.config import FLConfig
from repro.fl.training import local_train
from repro.isp.pipeline import BASELINE_CONFIG, ISPPipeline
from repro.isp.raw import RawImage, bayer_mosaic
from repro.nn import functional as F
from repro.nn.models import MobileNetV3Small
from repro.nn.optim import SGD
from repro.nn.serialization import get_weights
from repro.nn.tensor import Tensor


@pytest.fixture(scope="module")
def scene():
    return SceneGenerator(image_size=64, num_classes=12, seed=0).generate(0)


def test_bench_isp_pipeline(benchmark, scene):
    raw = RawImage(bayer_mosaic(scene))
    pipeline = ISPPipeline(BASELINE_CONFIG)
    out = benchmark(pipeline.process, raw)
    assert out.shape == (64, 64, 3)


def test_bench_device_capture(benchmark, scene):
    device = get_device("S9")
    scenes = scene[None]
    labels = np.array([0])

    def capture():
        return capture_with_device(scenes, labels, device, CaptureConfig(image_size=32, seed=0))

    dataset = benchmark(capture)
    assert dataset.features.shape == (1, 3, 32, 32)


def test_bench_mobilenet_forward_backward(benchmark):
    model = MobileNetV3Small(num_classes=12, seed=0)
    optimizer = SGD(model.parameters(), lr=0.1)
    x = np.random.default_rng(0).random((10, 3, 32, 32))
    y = np.arange(10) % 12

    def step():
        loss = F.cross_entropy(model(Tensor(x)), y)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        return float(loss.data)

    loss_value = benchmark(step)
    assert np.isfinite(loss_value)


def test_bench_fl_client_update(benchmark):
    model = MobileNetV3Small(num_classes=6, seed=0)
    rng = np.random.default_rng(0)
    dataset = ArrayDataset(rng.random((20, 3, 16, 16)), rng.integers(0, 6, size=20))
    config = FLConfig(num_clients=4, clients_per_round=2, num_rounds=1,
                      batch_size=10, learning_rate=0.1, seed=0)
    global_state = get_weights(model)

    result = benchmark(local_train, model, dataset, config, global_state)
    assert result.num_samples == 20
