"""Benchmark E11 — Fig. 8: synthetic-CIFAR per-device accuracy.

Paper shape: with 10 randomized synthetic device settings, FedAvg shows a wide
accuracy spread across device types; HeteroSwitch improves average accuracy
(by 24.4%) and reduces variance (by 43.9%).
"""

from conftest import run_once

from repro.eval.experiments import fig8_synthetic_cifar


def test_bench_fig8_synthetic_cifar(benchmark, bench_scale):
    result = run_once(benchmark, fig8_synthetic_cifar, scale=bench_scale,
                      methods=("fedavg", "heteroswitch"), seed=0)
    print()
    print(result.to_markdown())

    fedavg_avg = result.scalar("fedavg_average")
    hetero_avg = result.scalar("heteroswitch_average")
    assert 0.0 <= fedavg_avg <= 1.0 and 0.0 <= hetero_avg <= 1.0

    # Shape check: HeteroSwitch's average accuracy across synthetic device types
    # is not meaningfully below FedAvg's (the paper reports a large improvement).
    assert hetero_avg >= fedavg_avg - 0.10
