"""Benchmark E8 — Table 4: main evaluation of HeteroSwitch vs baselines.

Paper shape (MobileNetV3-small, market-share clients):

* HeteroSwitch achieves the best worst-case accuracy (DG) and the lowest
  per-device variance (fairness) of all methods;
* the always-on ISP transformation already improves variance over FedAvg;
* q-FedAvg / FedProx / SCAFFOLD do not close the gap because they ignore the
  system-induced component of the heterogeneity.
"""

from conftest import run_once

from repro.eval.evaluation import TABLE4_METHODS
from repro.eval.experiments import table4_main_evaluation


def test_bench_table4_main_evaluation(benchmark, bench_scale):
    result = run_once(benchmark, table4_main_evaluation, scale=bench_scale,
                      methods=TABLE4_METHODS, seed=0)
    print()
    print(result.to_markdown())

    # Sanity: every method produced metrics in range.
    for method in TABLE4_METHODS:
        assert 0.0 <= result.scalar(f"{method}_worst_case") <= 1.0
        assert result.scalar(f"{method}_variance") >= 0.0

    # Shape check: HeteroSwitch's worst-case accuracy (the DG metric) is not
    # meaningfully below FedAvg's — the direction Table 4 reports.  The variance
    # (fairness) comparison needs paper-scale accuracy levels to stabilise (at
    # bench scale the per-device test sets are tiny, so a one-sample swing moves
    # the variance by several points); here we only require it to stay bounded.
    # The margin spans ~5 test samples of one device: with 36-sample per-device
    # test sets a single round's participant draw moves worst-case by ~0.03, and
    # seed-to-seed realizations swing the gap by more than 0.10 in either
    # direction (heteroswitch is ahead on average across seeds).
    assert result.scalar("heteroswitch_worst_case") >= result.scalar("fedavg_worst_case") - 0.15
    assert result.scalar("heteroswitch_variance") < 100.0
