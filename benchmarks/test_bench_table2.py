"""Benchmark E2 — Table 2: cross-device model-quality degradation matrix.

Paper shape: the diagonal (train device == test device) is always the best;
off-diagonal entries degrade by 1-50%, and same-vendor pairs (Pixel 5 / Pixel 2)
degrade least.
"""

import numpy as np
from conftest import run_once

from repro.eval.experiments import table2_cross_device


def test_bench_table2_cross_device_matrix(benchmark, bench_scale):
    result = run_once(benchmark, table2_cross_device, scale=bench_scale, seed=0)
    print()
    print(result.to_markdown())

    matrix = result.metadata["accuracy_matrix"]
    devices = result.metadata["devices"]

    # Shape check 1: averaged over train devices, testing on the training device
    # beats the average cross-device accuracy (system-induced degradation exists).
    own = np.mean([matrix[d][d] for d in devices])
    cross = np.mean([matrix[a][b] for a in devices for b in devices if a != b])
    assert own >= cross - 0.02

    # Shape check 2: overall mean degradation is non-negative.
    assert result.scalar("mean_degradation") >= -0.05
