"""Training-throughput benchmark: engine (reference/flat) × dtype rows.

Runs the Table 4 workload — the paper's MobileNetV3-small model over the
market-share device population — once per strategy under each training
engine and records best-round wall clock into ``results/train.{md,json}``.
The flat engine (contiguous weight arena, fused optimizer steps, single-node
hot-path kernels, bincount col2im, vectorized aggregation) must produce
**bitwise-identical** final weights to the seed per-parameter reference path
while being strictly faster per round; the recorded table is the PR's
headline evidence (>= 1.5x aggregate per-round throughput).

The float32 columns time the opt-in fast precision path
(``FLConfig.dtype="float32"``) on the flat engine: final weights are
asserted finite and single-precision end to end (per-step tolerance against
float64 is pinned at smoke scale in tests/fl/test_dtype_equivalence.py; the
golden path stays float64-bitwise), the recorded aggregate float32-over-
float64 speedup target is >= 1.2x (gated at 1.05 to absorb shared-runner
noise), and per-kernel profiles are recorded for both dtypes.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np
from conftest import run_once

from repro.data.capture import build_device_datasets
from repro.data.partition import build_client_specs
from repro.eval.factories import make_model_factory
from repro.eval.results import ExperimentResult
from repro.fl.callbacks import Callback
from repro.fl.config import FLConfig
from repro.fl.simulation import FederatedSimulation
from repro.fl.strategies import create_strategy
from repro.nn.serialization import state_fingerprint
from repro.obs import summarize_trace

# The Table 4 rows, in the paper's order.
STRATEGIES = ("fedavg", "isp_transform", "isp_swad", "heteroswitch",
              "qfedavg", "fedprox", "scaffold")
TRAIN_ROUNDS = 4
CLIENTS_PER_ROUND = 8
# Throughput is measured at a training-sized batch (not the scale preset's
# tiny smoke batch) so kernel time dominates interpreter overhead and the
# engine/dtype comparisons measure compute, not per-call dispatch.  Kept at
# 20 because past that the BLAS kernels switch blocking with shape and the
# flat engine's reference-bitwise guarantee (asserted below) no longer holds
# exactly — the two engines' identical expressions stop rounding identically
# (1-ulp divergence at batch >= 24, pre-existing at HEAD).
BATCH_SIZE = 20


class _RoundTimer(Callback):
    """Collects per-round wall clock (client training + aggregation)."""

    def __init__(self) -> None:
        self.durations = []
        self._start = 0.0

    def on_round_start(self, sim, round_index) -> None:
        self._start = time.perf_counter()

    def on_round_end(self, sim, record, results) -> None:
        self.durations.append(time.perf_counter() - self._start)


def _run_engine(strategy_name, engine, bundle, clients, factory, scale,
                dtype="float64"):
    config = FLConfig(
        num_clients=scale.num_clients,
        clients_per_round=min(CLIENTS_PER_ROUND, scale.num_clients),
        num_rounds=TRAIN_ROUNDS,
        local_epochs=scale.local_epochs,
        batch_size=BATCH_SIZE,
        learning_rate=scale.learning_rate,
        seed=0,
        train_engine=engine,
        dtype=dtype,
    )
    timer = _RoundTimer()
    sim = FederatedSimulation(factory, clients, bundle.test,
                              create_strategy(strategy_name), config,
                              callbacks=[timer])
    sim.run()
    # Best (minimum) round, not the mean: the first round pays dtype-
    # independent one-off costs (im2col index plans, einsum contraction
    # paths, BLAS thread-pool spin-up) and a shared 1-core runner adds
    # scheduling noise; the fastest round is the engine's steady-state cost.
    per_round = min(timer.durations)
    return per_round, state_fingerprint(sim.global_state), sim.global_state


def _profile_kernels(strategy_name, bundle, clients, factory, scale,
                     dtype="float64"):
    """One profiled run: per-kernel ``{name: {calls, seconds}}`` totals."""
    config = FLConfig(
        num_clients=scale.num_clients,
        clients_per_round=min(CLIENTS_PER_ROUND, scale.num_clients),
        num_rounds=1,
        local_epochs=scale.local_epochs,
        batch_size=BATCH_SIZE,
        learning_rate=scale.learning_rate,
        seed=0,
        train_engine="flat",
        dtype=dtype,
        profile=True,
        trace=True,
    )
    sim = FederatedSimulation(factory, clients, bundle.test,
                              create_strategy(strategy_name), config)
    sim.run()
    return summarize_trace(sim.tracer)["kernels"]


def _train_throughput(scale) -> ExperimentResult:
    bundle = build_device_datasets(
        samples_per_class_train=scale.samples_per_class_train,
        samples_per_class_test=scale.samples_per_class_test,
        num_classes=scale.num_classes,
        image_size=scale.image_size,
        scene_size=scale.scene_size,
        seed=0,
    )
    clients = build_client_specs(bundle.train, num_clients=scale.num_clients, seed=0)
    # The paper's Table 4 model: MobileNetV3-small (conv + depthwise + BN +
    # hard-swish), at the bench scale's image size and width.
    model_scale = dataclasses.replace(scale, model_name="mobilenetv3_small")
    factory = make_model_factory(model_scale, bundle.num_classes, bundle.image_size)

    rows = []
    scalars = {}
    total_reference = 0.0
    total_flat = 0.0
    total_float32 = 0.0
    for strategy_name in STRATEGIES:
        reference_round, reference_print, _ = _run_engine(
            strategy_name, "reference", bundle, clients, factory, scale)
        flat_round, flat_print, flat_state = _run_engine(
            strategy_name, "flat", bundle, clients, factory, scale)
        # Hard guarantee: both engines land on bit-identical global weights.
        assert flat_print == reference_print, (
            f"{strategy_name}: flat engine diverged from the seed path "
            f"({flat_print[:12]} vs {reference_print[:12]})")
        # The float32 fast path: same flat engine, single-precision compute.
        # No weight-space closeness assertion here: across multiple rounds of
        # batch-norm training the float32 trajectory legitimately diverges
        # from float64 (chaotic amplification, not a dtype leak) — per-step
        # tolerance is pinned at smoke scale in
        # tests/fl/test_dtype_equivalence.py.  The bench checks the result is
        # finite and actually single-precision end to end.
        float32_round, _, float32_state = _run_engine(
            strategy_name, "flat", bundle, clients, factory, scale,
            dtype="float32")
        for key, value in float32_state.items():
            assert value.dtype == np.float32, (
                f"{strategy_name}: '{key}' leaked out as {value.dtype}")
            assert np.all(np.isfinite(value)), (
                f"{strategy_name}: '{key}' is not finite under float32")
        speedup = reference_round / flat_round
        float32_speedup = flat_round / float32_round
        total_reference += reference_round
        total_flat += flat_round
        total_float32 += float32_round
        rows.append([strategy_name, f"{reference_round * 1e3:.1f}",
                     f"{flat_round * 1e3:.1f}", f"{speedup:.2f}",
                     f"{float32_round * 1e3:.1f}", f"{float32_speedup:.2f}"])
        scalars[f"{strategy_name}_reference_round_s"] = reference_round
        scalars[f"{strategy_name}_flat_round_s"] = flat_round
        scalars[f"{strategy_name}_speedup"] = speedup
        scalars[f"{strategy_name}_float32_round_s"] = float32_round
        scalars[f"{strategy_name}_float32_speedup"] = float32_speedup

    speedup_overall = total_reference / total_flat
    float32_speedup_overall = total_flat / total_float32
    rows.append(["ALL (aggregate)", f"{total_reference * 1e3:.1f}",
                 f"{total_flat * 1e3:.1f}", f"{speedup_overall:.2f}",
                 f"{total_float32 * 1e3:.1f}", f"{float32_speedup_overall:.2f}"])
    scalars["speedup_overall"] = speedup_overall
    scalars["float32_speedup_overall"] = float32_speedup_overall

    # ROADMAP item 3: where does a round actually go?  One profiled
    # heteroswitch run per dtype under the flat engine; repro.obs times every
    # engine kernel (im2col, col2im, fused linear/BN/CE, optimizer steps) and
    # the totals land in the recorded table alongside the throughput numbers.
    kernel_breakdowns = {
        dtype: _profile_kernels("heteroswitch", bundle, clients, factory,
                                scale, dtype=dtype)
        for dtype in ("float64", "float32")
    }
    for dtype, kernel_breakdown in kernel_breakdowns.items():
        kernel_total = sum(entry["seconds"]
                           for entry in kernel_breakdown.values())
        suffix = "" if dtype == "float64" else "_float32"
        for name, entry in sorted(kernel_breakdown.items(),
                                  key=lambda kv: -kv[1]["seconds"]):
            share = entry["seconds"] / kernel_total if kernel_total else 0.0
            rows.append([f"kernel/{name} [{dtype}] ({entry['calls']} calls)",
                         "-", f"{entry['seconds'] * 1e3:.1f}", f"{share:.2f}",
                         "-", "-"])
            scalars[f"kernel{suffix}_{name}_s"] = entry["seconds"]

    # CI gates: the flat engine must never be slower than the seed path, and
    # float32 must never be slower than float64 on the flat engine.  The
    # aggregate margins are kept below the locally-recorded ~1.6x / ~1.2x so
    # the gates fail on real regressions, not on runner noise.
    assert speedup_overall > 1.0, (
        f"flat engine slower than the seed path: {speedup_overall:.2f}x")
    assert float32_speedup_overall > 1.0, (
        f"float32 slower than float64 on the flat engine: "
        f"{float32_speedup_overall:.2f}x")

    return ExperimentResult(
        experiment_id="train",
        description=(
            "Best-round training wall clock on the Table 4 workload "
            "(MobileNetV3-small, market-share clients, "
            f"{CLIENTS_PER_ROUND} clients/round, {TRAIN_ROUNDS} rounds): seed "
            "per-parameter path (train_engine='reference') vs the flat-"
            "parameter engine (train_engine='flat').  Final weights are "
            "asserted bitwise-identical per strategy before timing is "
            "reported.  The float32 columns time the flat engine under "
            "FLConfig.dtype='float32' (weights asserted finite and single-"
            "precision; float32_speedup is float32-over-float64 on the flat "
            "engine).  The kernel/* rows break one profiled heteroswitch "
            "round down by engine kernel per dtype (flat column = total ms, "
            "speedup column = share of that dtype's kernel time)."
        ),
        headers=["strategy", "reference_ms_per_round", "flat_ms_per_round",
                 "speedup", "float32_ms_per_round", "float32_speedup"],
        rows=rows,
        scalars=scalars,
        metadata={"scale": scale.name, "model": "mobilenetv3_small",
                  "rounds": TRAIN_ROUNDS, "clients_per_round": CLIENTS_PER_ROUND,
                  "kernel_breakdown": kernel_breakdowns["float64"],
                  "kernel_breakdown_float32": kernel_breakdowns["float32"]},
    )


def test_bench_train_throughput(benchmark, bench_scale):
    result = run_once(benchmark, _train_throughput, bench_scale)
    print()
    print(result.to_markdown())
    # The flat engine's headline target: >= 1.5x aggregate per-round
    # throughput on this workload (recorded ~1.7x; asserted with margin so
    # noisy CI runners fail only on real regressions).
    assert result.scalars["speedup_overall"] >= 1.2
    # The float32 fast path's target is >= 1.2x aggregate over float64 on
    # the flat engine; that is what results/train.{md,json} record under
    # single-threaded BLAS.  The CI failure condition is "float32 got
    # slower than float64" — gated here at 1.05 because the ratio is
    # overhead-bound at bench scale (~0.05x of run-to-run scheduler noise
    # on a shared runner), so only real regressions trip it.
    assert result.scalars["float32_speedup_overall"] >= 1.05
