"""Training-throughput benchmark: seed per-parameter path vs flat engine.

Runs the Table 4 workload — the paper's MobileNetV3-small model over the
market-share device population — once per strategy under each training
engine and records per-round wall clock into ``results/train.{md,json}``.
The flat engine (contiguous weight arena, fused optimizer steps, single-node
hot-path kernels, bincount col2im, vectorized aggregation) must produce
**bitwise-identical** final weights to the seed per-parameter reference path
while being strictly faster per round; the recorded table is the PR's
headline evidence (>= 1.5x aggregate per-round throughput).
"""

from __future__ import annotations

import dataclasses
import time

from conftest import run_once

from repro.data.capture import build_device_datasets
from repro.data.partition import build_client_specs
from repro.eval.factories import make_model_factory
from repro.eval.results import ExperimentResult
from repro.fl.callbacks import Callback
from repro.fl.config import FLConfig
from repro.fl.simulation import FederatedSimulation
from repro.fl.strategies import create_strategy
from repro.nn.serialization import state_fingerprint
from repro.obs import summarize_trace

# The Table 4 rows, in the paper's order.
STRATEGIES = ("fedavg", "isp_transform", "isp_swad", "heteroswitch",
              "qfedavg", "fedprox", "scaffold")
TRAIN_ROUNDS = 4
CLIENTS_PER_ROUND = 8


class _RoundTimer(Callback):
    """Collects per-round wall clock (client training + aggregation)."""

    def __init__(self) -> None:
        self.durations = []
        self._start = 0.0

    def on_round_start(self, sim, round_index) -> None:
        self._start = time.perf_counter()

    def on_round_end(self, sim, record, results) -> None:
        self.durations.append(time.perf_counter() - self._start)


def _run_engine(strategy_name, engine, bundle, clients, factory, scale):
    config = FLConfig(
        num_clients=scale.num_clients,
        clients_per_round=min(CLIENTS_PER_ROUND, scale.num_clients),
        num_rounds=TRAIN_ROUNDS,
        local_epochs=scale.local_epochs,
        batch_size=scale.batch_size,
        learning_rate=scale.learning_rate,
        seed=0,
        train_engine=engine,
    )
    timer = _RoundTimer()
    sim = FederatedSimulation(factory, clients, bundle.test,
                              create_strategy(strategy_name), config,
                              callbacks=[timer])
    sim.run()
    per_round = sum(timer.durations) / len(timer.durations)
    return per_round, state_fingerprint(sim.global_state)


def _profile_kernels(strategy_name, bundle, clients, factory, scale):
    """One profiled run: per-kernel ``{name: {calls, seconds}}`` totals."""
    config = FLConfig(
        num_clients=scale.num_clients,
        clients_per_round=min(CLIENTS_PER_ROUND, scale.num_clients),
        num_rounds=1,
        local_epochs=scale.local_epochs,
        batch_size=scale.batch_size,
        learning_rate=scale.learning_rate,
        seed=0,
        train_engine="flat",
        profile=True,
        trace=True,
    )
    sim = FederatedSimulation(factory, clients, bundle.test,
                              create_strategy(strategy_name), config)
    sim.run()
    return summarize_trace(sim.tracer)["kernels"]


def _train_throughput(scale) -> ExperimentResult:
    bundle = build_device_datasets(
        samples_per_class_train=scale.samples_per_class_train,
        samples_per_class_test=scale.samples_per_class_test,
        num_classes=scale.num_classes,
        image_size=scale.image_size,
        scene_size=scale.scene_size,
        seed=0,
    )
    clients = build_client_specs(bundle.train, num_clients=scale.num_clients, seed=0)
    # The paper's Table 4 model: MobileNetV3-small (conv + depthwise + BN +
    # hard-swish), at the bench scale's image size and width.
    model_scale = dataclasses.replace(scale, model_name="mobilenetv3_small")
    factory = make_model_factory(model_scale, bundle.num_classes, bundle.image_size)

    rows = []
    scalars = {}
    total_reference = 0.0
    total_flat = 0.0
    for strategy_name in STRATEGIES:
        reference_round, reference_print = _run_engine(
            strategy_name, "reference", bundle, clients, factory, scale)
        flat_round, flat_print = _run_engine(
            strategy_name, "flat", bundle, clients, factory, scale)
        # Hard guarantee: both engines land on bit-identical global weights.
        assert flat_print == reference_print, (
            f"{strategy_name}: flat engine diverged from the seed path "
            f"({flat_print[:12]} vs {reference_print[:12]})")
        speedup = reference_round / flat_round
        total_reference += reference_round
        total_flat += flat_round
        rows.append([strategy_name, f"{reference_round * 1e3:.1f}",
                     f"{flat_round * 1e3:.1f}", f"{speedup:.2f}"])
        scalars[f"{strategy_name}_reference_round_s"] = reference_round
        scalars[f"{strategy_name}_flat_round_s"] = flat_round
        scalars[f"{strategy_name}_speedup"] = speedup

    speedup_overall = total_reference / total_flat
    rows.append(["ALL (aggregate)", f"{total_reference * 1e3:.1f}",
                 f"{total_flat * 1e3:.1f}", f"{speedup_overall:.2f}"])
    scalars["speedup_overall"] = speedup_overall

    # ROADMAP item 3: where does a round actually go?  One profiled
    # heteroswitch run under the flat engine; repro.obs times every engine
    # kernel (im2col, col2im, fused linear/BN/CE, optimizer steps) and the
    # totals land in the recorded table alongside the throughput numbers.
    kernel_breakdown = _profile_kernels("heteroswitch", bundle, clients,
                                        factory, scale)
    kernel_total = sum(entry["seconds"] for entry in kernel_breakdown.values())
    for name, entry in sorted(kernel_breakdown.items(),
                              key=lambda kv: -kv[1]["seconds"]):
        share = entry["seconds"] / kernel_total if kernel_total else 0.0
        rows.append([f"kernel/{name} ({entry['calls']} calls)",
                     "-", f"{entry['seconds'] * 1e3:.1f}", f"{share:.2f}"])
        scalars[f"kernel_{name}_s"] = entry["seconds"]

    # CI gate: the flat engine must never be slower than the seed path.  The
    # aggregate margin is kept below the locally-recorded ~1.7x so the gate
    # fails on real regressions, not on runner noise.
    assert speedup_overall > 1.0, (
        f"flat engine slower than the seed path: {speedup_overall:.2f}x")

    return ExperimentResult(
        experiment_id="train",
        description=(
            "Per-round training wall clock on the Table 4 workload "
            "(MobileNetV3-small, market-share clients, "
            f"{CLIENTS_PER_ROUND} clients/round, {TRAIN_ROUNDS} rounds): seed "
            "per-parameter path (train_engine='reference') vs the flat-"
            "parameter engine (train_engine='flat').  Final weights are "
            "asserted bitwise-identical per strategy before timing is "
            "reported.  The kernel/* rows break one profiled heteroswitch "
            "round down by engine kernel (flat column = total ms, speedup "
            "column = share of kernel time)."
        ),
        headers=["strategy", "reference_ms_per_round", "flat_ms_per_round",
                 "speedup"],
        rows=rows,
        scalars=scalars,
        metadata={"scale": scale.name, "model": "mobilenetv3_small",
                  "rounds": TRAIN_ROUNDS, "clients_per_round": CLIENTS_PER_ROUND,
                  "kernel_breakdown": kernel_breakdown},
    )


def test_bench_train_throughput(benchmark, bench_scale):
    result = run_once(benchmark, _train_throughput, bench_scale)
    print()
    print(result.to_markdown())
    # The flat engine's headline target: >= 1.5x aggregate per-round
    # throughput on this workload (recorded ~1.7x; asserted with margin so
    # noisy CI runners fail only on real regressions).
    assert result.scalars["speedup_overall"] >= 1.2
